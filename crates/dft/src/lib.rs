//! Scan infrastructure and EDT-like response compaction.
//!
//! The paper's designs are conventional scan designs with Tessent EDT test
//! compression at a 20× compaction ratio, plus bypass signals that scan out
//! uncompressed responses. This crate provides the equivalent substrate:
//!
//! * [`ScanChains`] stitches the flip-flops of a netlist into `N_sc` chains
//!   feeding `N_ch` output channels (Table III's design matrix shape);
//! * [`ObsMode::Bypass`] observes each scan cell directly;
//! * [`ObsMode::Compacted`] XOR-compacts the chains of a channel per shift
//!   cycle — any *combinational (XOR-based) response compactor* in the
//!   paper's words — so a failure is only localized to a `(channel, cycle)`
//!   pair.
//!
//! # Examples
//!
//! ```
//! use m3d_netlist::generate::{Benchmark, GenParams};
//! use m3d_dft::{ObsMode, ScanChains, ScanConfig};
//!
//! let nl = Benchmark::Aes.generate(&GenParams::small(1));
//! let scan = ScanChains::new(&nl, ScanConfig::for_flop_count(nl.flops().len()));
//! let fails = vec![nl.flop_of(nl.flops()[0]).unwrap()];
//! let obs = scan.observe(&fails, ObsMode::Compacted);
//! assert_eq!(obs.len(), 1);
//! ```

#![warn(missing_docs)]

use m3d_netlist::{FlopId, Netlist};

/// Scan-architecture parameters: chain count and compaction ratio.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanConfig {
    /// Number of scan chains (`N_sc` in Table III).
    pub num_chains: usize,
    /// Chains per output channel (the paper fixes 20×).
    pub chains_per_channel: usize,
}

impl ScanConfig {
    /// The paper's compaction ratio.
    pub const PAPER_COMPACTION: usize = 20;

    /// A configuration scaled to the flop count: roughly 12 cells per
    /// chain, 20 chains per channel (clamped so small designs still get at
    /// least two chains).
    pub fn for_flop_count(flops: usize) -> Self {
        ScanConfig {
            num_chains: (flops / 12).max(2),
            chains_per_channel: Self::PAPER_COMPACTION,
        }
    }

    /// Number of output channels.
    pub fn num_channels(&self) -> usize {
        self.num_chains.div_ceil(self.chains_per_channel)
    }
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            num_chains: 8,
            chains_per_channel: Self::PAPER_COMPACTION,
        }
    }
}

/// Whether responses bypass the compactor or pass through it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObsMode {
    /// Uncompressed scan-out: each failing cell is observed directly.
    Bypass,
    /// XOR response compaction: failures localize to `(channel, cycle)`.
    Compacted,
}

impl ObsMode {
    /// Both modes, bypass first (the order of the paper's table pairs).
    pub const ALL: [ObsMode; 2] = [ObsMode::Bypass, ObsMode::Compacted];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ObsMode::Bypass => "bypass",
            ObsMode::Compacted => "compacted",
        }
    }
}

/// An observed failure location on the tester.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObsPoint {
    /// A specific failing scan cell (bypass mode).
    Flop(FlopId),
    /// A failing compactor output at a shift cycle (compacted mode).
    ChannelCycle {
        /// Output channel index.
        channel: u16,
        /// Shift-cycle position within the chains.
        cycle: u16,
    },
}

/// The stitched scan architecture of a design.
///
/// Flops are stitched round-robin so chain lengths differ by at most one,
/// mirroring chain balancing in industrial stitching.
#[derive(Clone, Debug)]
pub struct ScanChains {
    chains: Vec<Vec<FlopId>>,
    /// Per flop: `(chain, position)`.
    place: Vec<(u16, u16)>,
    chains_per_channel: usize,
}

impl ScanChains {
    /// Stitches the flops of `netlist` into chains.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_chains == 0` or the netlist has no flops.
    pub fn new(netlist: &Netlist, config: ScanConfig) -> Self {
        assert!(config.num_chains > 0, "need at least one chain");
        let n = netlist.flops().len();
        assert!(n > 0, "scan stitching needs flops");
        let chains_n = config.num_chains.min(n);
        let mut chains = vec![Vec::with_capacity(n.div_ceil(chains_n)); chains_n];
        let mut place = vec![(0u16, 0u16); n];
        for (i, spot) in place.iter_mut().enumerate() {
            let chain = i % chains_n;
            let pos = chains[chain].len();
            *spot = (chain as u16, pos as u16);
            chains[chain].push(FlopId::new(i));
        }
        ScanChains {
            chains,
            place,
            chains_per_channel: config.chains_per_channel,
        }
    }

    /// Builds a scan architecture from explicit chains, without validating
    /// them against any netlist.
    ///
    /// This is the structural escape hatch the `m3d-lint` mutation tests
    /// use to model broken stitching (dropped, duplicated, or phantom
    /// flops); [`new`](ScanChains::new) is the checked constructor. Each
    /// flop's `(chain, position)` is taken from its first occurrence.
    pub fn from_raw_chains(chains: Vec<Vec<FlopId>>, chains_per_channel: usize) -> Self {
        let max_flop = chains
            .iter()
            .flatten()
            .map(|f| f.index() + 1)
            .max()
            .unwrap_or(0);
        let mut place = vec![(u16::MAX, u16::MAX); max_flop];
        for (c, chain) in chains.iter().enumerate() {
            for (p, &f) in chain.iter().enumerate() {
                if place[f.index()] == (u16::MAX, u16::MAX) {
                    place[f.index()] = (c as u16, p as u16);
                }
            }
        }
        ScanChains {
            chains,
            place,
            chains_per_channel,
        }
    }

    /// The chains, each a list of flops by shift position.
    #[inline]
    pub fn chains(&self) -> &[Vec<FlopId>] {
        &self.chains
    }

    /// Number of chains.
    #[inline]
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Number of compactor output channels.
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.chain_count().div_ceil(self.chains_per_channel)
    }

    /// Longest chain length (test time per pattern in shift cycles).
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The `(chain, position)` of a scan cell.
    #[inline]
    pub fn place_of(&self, flop: FlopId) -> (u16, u16) {
        self.place[flop.index()]
    }

    /// The channel a chain feeds.
    #[inline]
    pub fn channel_of_chain(&self, chain: u16) -> u16 {
        (chain as usize / self.chains_per_channel) as u16
    }

    /// Maps a set of failing scan cells to tester observations.
    ///
    /// In bypass mode this is the identity on cells. In compacted mode each
    /// `(channel, cycle)` output is the XOR of its chains, so a location
    /// fails only when an *odd* number of its cells fail — the aliasing
    /// that degrades diagnosis under compression.
    pub fn observe(&self, failing: &[FlopId], mode: ObsMode) -> Vec<ObsPoint> {
        match mode {
            ObsMode::Bypass => {
                let mut v: Vec<ObsPoint> = failing.iter().map(|&f| ObsPoint::Flop(f)).collect();
                v.sort();
                v.dedup();
                v
            }
            ObsMode::Compacted => {
                let mut parity = std::collections::HashMap::<(u16, u16), u32>::new();
                for &f in failing {
                    let (chain, cycle) = self.place_of(f);
                    let ch = self.channel_of_chain(chain);
                    *parity.entry((ch, cycle)).or_insert(0) += 1;
                }
                let mut v: Vec<ObsPoint> = parity
                    .into_iter()
                    .filter(|&(_, count)| count % 2 == 1)
                    .map(|((channel, cycle), _)| ObsPoint::ChannelCycle { channel, cycle })
                    .collect();
                v.sort();
                v
            }
        }
    }

    /// The scan cells that could have produced an observation: the cell
    /// itself in bypass mode, or every cell of the channel's chains at that
    /// cycle in compacted mode (the diagnosis search-space blow-up).
    pub fn candidate_flops(&self, obs: ObsPoint) -> Vec<FlopId> {
        match obs {
            ObsPoint::Flop(f) => vec![f],
            ObsPoint::ChannelCycle { channel, cycle } => {
                let lo = channel as usize * self.chains_per_channel;
                let hi = (lo + self.chains_per_channel).min(self.chain_count());
                (lo..hi)
                    .filter_map(|c| self.chains[c].get(cycle as usize).copied())
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::{Benchmark, GenParams};

    fn scan() -> (Netlist, ScanChains) {
        let nl = Benchmark::Netcard.generate(&GenParams::small(1));
        let cfg = ScanConfig::for_flop_count(nl.flops().len());
        let chains = ScanChains::new(&nl, cfg);
        (nl, chains)
    }

    #[test]
    fn stitching_is_balanced_and_total() {
        let (nl, s) = scan();
        let total: usize = s.chains().iter().map(Vec::len).sum();
        assert_eq!(total, nl.flops().len());
        let min = s.chains().iter().map(Vec::len).min().unwrap();
        assert!(s.max_chain_length() - min <= 1, "round-robin balance");
    }

    #[test]
    fn place_of_inverts_chains() {
        let (_, s) = scan();
        for (c, chain) in s.chains().iter().enumerate() {
            for (p, &f) in chain.iter().enumerate() {
                assert_eq!(s.place_of(f), (c as u16, p as u16));
            }
        }
    }

    #[test]
    fn bypass_observation_is_identity() {
        let (_, s) = scan();
        let fails = vec![FlopId::new(0), FlopId::new(3), FlopId::new(3)];
        let obs = s.observe(&fails, ObsMode::Bypass);
        assert_eq!(
            obs,
            vec![
                ObsPoint::Flop(FlopId::new(0)),
                ObsPoint::Flop(FlopId::new(3))
            ]
        );
    }

    #[test]
    fn compaction_aliases_even_parity() {
        let (_, s) = scan();
        // Two failing cells in the same channel at the same cycle cancel.
        let (c0, p0) = (0u16, 0u16);
        let f0 = s.chains()[c0 as usize][p0 as usize];
        // find another chain on the same channel with a cell at p0
        let partner = (1..s.chain_count())
            .find(|&c| {
                s.channel_of_chain(c as u16) == s.channel_of_chain(c0)
                    && s.chains()[c].len() > p0 as usize
            })
            .map(|c| s.chains()[c][p0 as usize]);
        if let Some(f1) = partner {
            let obs = s.observe(&[f0, f1], ObsMode::Compacted);
            assert!(obs.is_empty(), "even parity aliases to no failure");
        }
        let single = s.observe(&[f0], ObsMode::Compacted);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn candidate_flops_cover_the_observation() {
        let (_, s) = scan();
        let f = s.chains()[0][1];
        for mode in ObsMode::ALL {
            for obs in s.observe(&[f], mode) {
                assert!(
                    s.candidate_flops(obs).contains(&f),
                    "{mode:?}: candidates must include the true cell"
                );
            }
        }
    }

    #[test]
    fn compacted_candidates_span_the_channel() {
        let (_, s) = scan();
        let obs = ObsPoint::ChannelCycle {
            channel: 0,
            cycle: 0,
        };
        let cands = s.candidate_flops(obs);
        assert!(cands.len() > 1, "compaction widens the search space");
    }

    #[test]
    fn config_reports_channels() {
        let cfg = ScanConfig {
            num_chains: 45,
            chains_per_channel: 20,
        };
        assert_eq!(cfg.num_channels(), 3);
        assert_eq!(ScanConfig::default().num_channels(), 1);
    }
}
