//! The [`LintRunner`] API: bundle what you have into a [`LintTarget`],
//! pick the pass families, get back one [`LintReport`].

use m3d_dft::ScanChains;
use m3d_fault_localization::DiagSample;
use m3d_gnn::GraphData;
use m3d_hetgraph::SubGraph;
use m3d_netlist::Netlist;
use m3d_part::M3dDesign;

use crate::passes;
use crate::report::LintReport;

/// One pass family of checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// Netlist DRC (`L00xx`).
    Netlist,
    /// Partition/MIV/site-table checks (`L01xx`).
    M3d,
    /// Scan and test-point checks (`L02xx`).
    Dft,
    /// Graph-tensor and label checks (`L03xx`).
    Tensor,
    /// Flow-sensitive dataflow findings from `m3d-dataflow` (`L1xxx`):
    /// constant nets, redundant logic, statically untestable TDF sites,
    /// and the small-delay escape surface. Opt-in — not part of
    /// [`Pass::ALL`], because healthy designs legitimately carry
    /// untestable sites; `m3d-diag verify` runs it with a baseline.
    Dataflow,
}

impl Pass {
    /// The default pass families, in code order. `Dataflow` is opt-in
    /// (see its docs) and deliberately excluded.
    pub const ALL: [Pass; 4] = [Pass::Netlist, Pass::M3d, Pass::Dft, Pass::Tensor];
}

/// Everything lintable about one design, all optional: passes silently
/// skip what the target does not carry.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::{Benchmark, GenParams};
/// use m3d_lint::{LintRunner, LintTarget};
///
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let report = LintRunner::new().run(&LintTarget::new("aes").netlist(&nl));
/// assert!(report.is_clean());
/// ```
#[derive(Clone, Debug, Default)]
pub struct LintTarget<'a> {
    name: String,
    netlist: Option<&'a Netlist>,
    design: Option<&'a M3dDesign>,
    scan: Option<&'a ScanChains>,
    graphs: Vec<&'a GraphData>,
    subgraphs: Vec<&'a SubGraph>,
    samples: Vec<&'a DiagSample>,
}

impl<'a> LintTarget<'a> {
    /// An empty target with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        LintTarget {
            name: name.into(),
            ..LintTarget::default()
        }
    }

    /// Attaches a bare netlist (unnecessary when a design is attached).
    pub fn netlist(mut self, netlist: &'a Netlist) -> Self {
        self.netlist = Some(netlist);
        self
    }

    /// Attaches a partitioned design (also provides the netlist).
    pub fn design(mut self, design: &'a M3dDesign) -> Self {
        self.design = Some(design);
        self
    }

    /// Attaches a scan architecture.
    pub fn scan(mut self, scan: &'a ScanChains) -> Self {
        self.scan = Some(scan);
        self
    }

    /// Attaches one GNN input tensor.
    pub fn graph(mut self, data: &'a GraphData) -> Self {
        self.graphs.push(data);
        self
    }

    /// Attaches one back-traced sub-graph.
    pub fn subgraph(mut self, sg: &'a SubGraph) -> Self {
        self.subgraphs.push(sg);
        self
    }

    /// Attaches labelled diagnosis samples.
    pub fn samples(mut self, samples: impl IntoIterator<Item = &'a DiagSample>) -> Self {
        self.samples.extend(samples);
        self
    }

    fn effective_netlist(&self) -> Option<&'a Netlist> {
        self.netlist.or_else(|| self.design.map(M3dDesign::netlist))
    }
}

/// Runs a configurable set of pass families over a [`LintTarget`].
#[derive(Clone, Debug)]
pub struct LintRunner {
    passes: Vec<Pass>,
}

impl LintRunner {
    /// A runner with every pass family enabled.
    pub fn new() -> Self {
        LintRunner {
            passes: Pass::ALL.to_vec(),
        }
    }

    /// A runner restricted to the given pass families.
    pub fn with_passes(passes: &[Pass]) -> Self {
        LintRunner {
            passes: passes.to_vec(),
        }
    }

    /// Lints the target, returning a severity-sorted report.
    pub fn run(&self, target: &LintTarget<'_>) -> LintReport {
        let mut report = LintReport::new(target.name.clone());
        let nl = target.effective_netlist();
        for &pass in &self.passes {
            match pass {
                Pass::Netlist => {
                    if let Some(nl) = nl {
                        for d in passes::netlist::check_netlist(nl) {
                            report.push(d);
                        }
                    }
                }
                Pass::M3d => {
                    if let Some(design) = target.design {
                        for d in passes::m3d::check_design(design) {
                            report.push(d);
                        }
                    }
                }
                Pass::Dft => {
                    if let (Some(nl), Some(scan)) = (nl, target.scan) {
                        for d in passes::dft::check_scan(nl, scan) {
                            report.push(d);
                        }
                    }
                    // TPI netlists are recognised by the `-tpi` suffix
                    // `insert_test_points` appends.
                    if let Some(nl) = nl.filter(|nl| nl.name().ends_with("-tpi")) {
                        for d in passes::dft::check_tpi(nl) {
                            report.push(d);
                        }
                    }
                }
                Pass::Dataflow => {
                    if let Some(design) = target.design {
                        for d in passes::dataflow::check_design(design) {
                            report.push(d);
                        }
                    }
                }
                Pass::Tensor => {
                    for &data in &target.graphs {
                        for d in passes::tensor::check_graph_data(data) {
                            report.push(d);
                        }
                    }
                    for &sg in &target.subgraphs {
                        match target.design {
                            Some(design) => {
                                for d in passes::tensor::check_subgraph(design, sg) {
                                    report.push(d);
                                }
                            }
                            None => {
                                for d in passes::tensor::check_graph_data(&sg.data) {
                                    report.push(d);
                                }
                            }
                        }
                    }
                    if let Some(design) = target.design {
                        for &s in &target.samples {
                            for d in passes::tensor::check_sample(design, s) {
                                report.push(d);
                            }
                        }
                    }
                }
            }
        }
        report.sorted()
    }
}

impl Default for LintRunner {
    fn default() -> Self {
        LintRunner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_dft::ScanConfig;
    use m3d_netlist::generate::{Benchmark, GenParams};
    use m3d_part::PartitionAlgo;

    #[test]
    fn full_run_over_a_real_design_is_clean() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let scan = ScanChains::new(&nl, ScanConfig::for_flop_count(nl.flops().len()));
        let part = PartitionAlgo::MinCut.partition(&nl, 1);
        let design = M3dDesign::new(nl, part);
        let target = LintTarget::new("aes").design(&design).scan(&scan);
        let report = LintRunner::new().run(&target);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.diagnostics().len(), 0);
    }

    #[test]
    fn empty_target_produces_an_empty_report() {
        let report = LintRunner::new().run(&LintTarget::new("empty"));
        assert!(report.is_clean());
        assert_eq!(report.target(), "empty");
    }

    #[test]
    fn pass_selection_limits_the_checks() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        // A scan for a different netlist: the DFT pass would complain.
        let other = Benchmark::Tate.generate(&GenParams::small(1));
        let scan = ScanChains::new(&other, ScanConfig::for_flop_count(other.flops().len()));
        let target = LintTarget::new("t").netlist(&nl).scan(&scan);
        let with_dft = LintRunner::new().run(&target);
        let without = LintRunner::with_passes(&[Pass::Netlist]).run(&target);
        assert!(!with_dft.is_clean());
        assert!(without.is_clean());
    }
}
