//! Graph-tensor checks: the `L03xx` family.
//!
//! These run over the data actually fed to the GNN models: the adjacency
//! of a [`GcnGraph`](m3d_gnn::GcnGraph), the Table II feature matrix, the
//! back-traced [`SubGraph`]s, and the labels of a [`DiagSample`]. A single
//! NaN here silently poisons every downstream gradient, so the checks are
//! strict about finiteness and shape and advisory about value ranges.

use m3d_fault_localization::DiagSample;
use m3d_gnn::GraphData;
use m3d_hetgraph::{SubGraph, FEATURE_DIM, SCOAP_FEATURE_DIM};
use m3d_netlist::SitePos;
use m3d_part::M3dDesign;

use crate::diag::{Diagnostic, LintCode, Span};

/// Expected `[lo, hi]` per Table II feature column, from the normalization
/// in `m3d_hetgraph::extract`: columns 1, 8, 11, 12 are capped at 2 by the
/// extractor; the rest are ratios of design-level maxima.
pub const FEATURE_BOUNDS: [(f32, f32); FEATURE_DIM] = [
    (0.0, 1.0), // fan-in edges / 4 (max arity 4)
    (0.0, 2.0), // fan-out edges / 8, capped
    (0.0, 1.0), // topedges / flop count
    (0.0, 1.0), // tier: 0 top, 1 bottom, 0.5 MIV
    (0.0, 1.0), // level / max level
    (0.0, 1.0), // is gate output
    (0.0, 1.0), // connects to MIV
    (0.0, 1.0), // sub-graph fan-in / 4
    (0.0, 2.0), // sub-graph fan-out / 8, capped
    (0.0, 1.0), // mean topedge length / max
    (0.0, 1.0), // std topedge length / max
    (0.0, 2.0), // mean topedge MIVs / 4, capped
    (0.0, 2.0), // std topedge MIVs / 4, capped
];

/// Slack on the range check: normalized ratios may graze their bound.
const RANGE_EPS: f32 = 1e-4;

/// Checks a GNN input: edge indices in bounds, features finite, matrix in
/// Table II shape, and every value within its column's expected range.
pub fn check_graph_data(data: &GraphData) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = data.graph.node_count();
    if data.features.rows() != n {
        diags.push(Diagnostic::new(
            LintCode::FeatureShape,
            Span::Design,
            format!(
                "feature matrix has {} rows for a {n}-node graph",
                data.features.rows()
            ),
        ));
    }
    let scoap_cols = FEATURE_DIM + SCOAP_FEATURE_DIM;
    if data.features.cols() != FEATURE_DIM && data.features.cols() != scoap_cols {
        diags.push(Diagnostic::new(
            LintCode::FeatureShape,
            Span::Design,
            format!(
                "feature matrix has {} columns; Table II defines {FEATURE_DIM} \
                 ({scoap_cols} with the SCOAP extension)",
                data.features.cols()
            ),
        ));
    }
    for v in 0..n {
        for &u in data.graph.neighbors(v) {
            if u as usize >= n {
                diags.push(Diagnostic::new(
                    LintCode::UnknownRef,
                    Span::Node(v),
                    format!("node {v} has an edge to nonexistent node {u}"),
                ));
            }
        }
    }
    let ranged = data.features.cols() == FEATURE_DIM || data.features.cols() == scoap_cols;
    for r in 0..data.features.rows() {
        for (c, &x) in data.features.row(r).iter().enumerate() {
            if !x.is_finite() {
                diags.push(Diagnostic::new(
                    LintCode::NonFiniteFeature,
                    Span::Feature { node: r, col: c },
                    format!("feature value {x} is not finite"),
                ));
            } else if ranged {
                // SCOAP columns are normalized into [0, 1].
                let (lo, hi) = if c < FEATURE_DIM {
                    FEATURE_BOUNDS[c]
                } else {
                    (0.0, 1.0)
                };
                if x < lo - RANGE_EPS || x > hi + RANGE_EPS {
                    diags.push(Diagnostic::new(
                        LintCode::FeatureRange,
                        Span::Feature { node: r, col: c },
                        format!("feature value {x} outside expected [{lo}, {hi}]"),
                    ));
                }
            }
        }
    }
    diags
}

/// Checks a back-traced sub-graph against its design: sorted unique site
/// list, sites in range, node/feature counts agreeing, and the MIV node
/// list matching the MIV sites actually present.
pub fn check_subgraph(design: &M3dDesign, sg: &SubGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let total_sites = design.sites().len();
    for w in sg.sites.windows(2) {
        if w[0] >= w[1] {
            diags.push(Diagnostic::new(
                LintCode::UnsortedSites,
                Span::Site(w[1]),
                format!("site list not strictly ascending at {} -> {}", w[0], w[1]),
            ));
        }
    }
    for &site in &sg.sites {
        if site.index() >= total_sites {
            diags.push(Diagnostic::new(
                LintCode::UnknownRef,
                Span::Site(site),
                format!("sub-graph names site {site} but the design has {total_sites}"),
            ));
        }
    }
    if sg.data.graph.node_count() != sg.sites.len() {
        diags.push(Diagnostic::new(
            LintCode::FeatureShape,
            Span::Design,
            format!(
                "sub-graph has {} sites but a {}-node tensor",
                sg.sites.len(),
                sg.data.graph.node_count()
            ),
        ));
    }
    for &(node, miv) in &sg.miv_nodes {
        let Some(&site) = sg.sites.get(node) else {
            diags.push(Diagnostic::new(
                LintCode::BadMivNode,
                Span::Node(node),
                format!("MIV node {node} is out of range"),
            ));
            continue;
        };
        if site.index() >= total_sites || design.sites().pos(site) != SitePos::Miv(miv) {
            diags.push(Diagnostic::new(
                LintCode::BadMivNode,
                Span::Node(node),
                format!("node {node} (site {site}) is not MIV {miv}"),
            ));
        }
    }
    // Every MIV site retained by back-tracing must be declared.
    for (node, &site) in sg.sites.iter().enumerate() {
        if site.index() < total_sites {
            if let SitePos::Miv(m) = design.sites().pos(site) {
                if !sg.miv_nodes.contains(&(node, m)) {
                    diags.push(Diagnostic::new(
                        LintCode::BadMivNode,
                        Span::Node(node),
                        format!("MIV site {site} missing from the MIV node list"),
                    ));
                }
            }
        }
    }
    diags.extend(check_graph_data(&sg.data));
    diags
}

/// Checks a diagnosis sample's ground-truth labels against its design: MIV
/// indices in range and matching the injected MIV faults, the tier label
/// consistent with the injected sites, and sub-graph tensors sound.
pub fn check_sample(design: &M3dDesign, sample: &DiagSample) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let total_sites = design.sites().len();
    for fault in &sample.injected {
        if fault.site.index() >= total_sites {
            diags.push(Diagnostic::new(
                LintCode::LabelMismatch,
                Span::Site(fault.site),
                format!("injected fault at nonexistent site {}", fault.site),
            ));
        }
    }
    if sample.injected.is_empty() {
        diags.push(Diagnostic::new(
            LintCode::LabelMismatch,
            Span::Design,
            "sample with no injected fault".to_owned(),
        ));
        return diags;
    }
    if sample
        .injected
        .iter()
        .any(|f| f.site.index() >= total_sites)
    {
        return diags; // label recomputation below would be meaningless
    }
    // Recompute the MIV ground truth from the injected sites.
    let mut expected_mivs: Vec<u32> = sample
        .injected
        .iter()
        .filter_map(|f| match design.sites().pos(f.site) {
            SitePos::Miv(m) => Some(m),
            _ => None,
        })
        .collect();
    expected_mivs.sort_unstable();
    expected_mivs.dedup();
    let mut got = sample.miv_truth.clone();
    got.sort_unstable();
    got.dedup();
    if got != expected_mivs {
        diags.push(Diagnostic::new(
            LintCode::LabelMismatch,
            Span::Design,
            format!("MIV truth {got:?} disagrees with injected MIV sites {expected_mivs:?}"),
        ));
    }
    // Recompute the tier label: the shared tier of all injected sites, or
    // none if any fault is an MIV or the tiers differ.
    let mut expected_tier = None;
    let mut tierless = false;
    for f in &sample.injected {
        match design.tier_of_site(f.site) {
            None => tierless = true,
            Some(t) => match expected_tier {
                None => expected_tier = Some(t),
                Some(prev) if prev != t => tierless = true,
                _ => {}
            },
        }
    }
    let expected_tier = if tierless { None } else { expected_tier };
    if sample.faulty_tier != expected_tier {
        diags.push(Diagnostic::new(
            LintCode::LabelMismatch,
            Span::Design,
            format!(
                "tier label {:?} disagrees with injected sites ({expected_tier:?})",
                sample.faulty_tier
            ),
        ));
    }
    if let Some(sg) = &sample.subgraph {
        diags.extend(check_subgraph(design, sg));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_gnn::{GcnGraph, Matrix};

    fn clean_data(n: usize) -> GraphData {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        GraphData::new(
            GcnGraph::from_edges(n, &edges),
            Matrix::zeros(n, FEATURE_DIM),
        )
    }

    #[test]
    fn zeroed_features_are_clean() {
        assert!(check_graph_data(&clean_data(5)).is_empty());
    }

    #[test]
    fn nan_poison_is_located() {
        let mut d = clean_data(4);
        d.features.row_mut(2)[7] = f32::NAN;
        let diags = check_graph_data(&d);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::NonFiniteFeature);
        assert_eq!(diags[0].span, Span::Feature { node: 2, col: 7 });
    }

    #[test]
    fn out_of_range_feature_is_a_warning() {
        let mut d = clean_data(3);
        d.features.row_mut(0)[3] = 7.5; // tier must be within [0, 1]
        let diags = check_graph_data(&d);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::FeatureRange);
        assert_eq!(diags[0].severity, crate::Severity::Warn);
    }

    #[test]
    fn scoap_extended_width_is_accepted_and_ranged() {
        let n = 3;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        let mut d = GraphData::new(
            GcnGraph::from_edges(n, &edges),
            Matrix::zeros(n, FEATURE_DIM + SCOAP_FEATURE_DIM),
        );
        assert!(check_graph_data(&d).is_empty());
        d.features.row_mut(1)[FEATURE_DIM + 2] = 1.5; // CO out of [0, 1]
        let diags = check_graph_data(&d);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::FeatureRange);
    }

    #[test]
    fn wrong_column_count_is_a_shape_error() {
        let d = GraphData::new(
            GcnGraph::from_edges(2, &[(0, 1)]),
            Matrix::zeros(2, FEATURE_DIM - 1),
        );
        let diags = check_graph_data(&d);
        assert!(diags.iter().any(|g| g.code == LintCode::FeatureShape));
    }
}
