//! Netlist DRC: the `L00xx` family.
//!
//! This pass does not re-implement any structural analysis; it maps the
//! issues enumerated by [`m3d_netlist::check`] — the same single source of
//! truth that `NetlistBuilder::finish` enforces — onto stable lint codes.
//! Running it over a successfully built [`Netlist`] can therefore only
//! surface the advisory subset (dead cones, missing primary I/O); the
//! mutation tests reach the fatal codes through `m3d_netlist::raw`.

use m3d_netlist::check::StructuralIssue;
use m3d_netlist::{Gate, Net, Netlist};

use crate::diag::{Diagnostic, LintCode, Span};

/// Runs the full netlist DRC over a built netlist.
pub fn check_netlist(netlist: &Netlist) -> Vec<Diagnostic> {
    check_parts(netlist.gates(), netlist.nets())
}

/// Runs the full netlist DRC over raw gate/net tables (never panics, even
/// on corrupt cross-references).
pub fn check_parts(gates: &[Gate], nets: &[Net]) -> Vec<Diagnostic> {
    m3d_netlist::check::check_parts(gates, nets)
        .iter()
        .map(diagnostic_of)
        .collect()
}

/// Maps one structural issue to its stable lint code and span.
pub fn diagnostic_of(issue: &StructuralIssue) -> Diagnostic {
    let (code, span) = match issue {
        StructuralIssue::UnknownNet { gate, .. } => (LintCode::UnknownRef, Span::Gate(*gate)),
        StructuralIssue::BadArity { gate, .. } => (LintCode::ArityViolation, Span::Gate(*gate)),
        StructuralIssue::MissingOutput { gate } | StructuralIssue::PseudoOutputDrives { gate } => {
            (LintCode::OutputPinViolation, Span::Gate(*gate))
        }
        StructuralIssue::NoFlops => (LintCode::NoFlops, Span::Design),
        StructuralIssue::DanglingNet { net } => (LintCode::DanglingNet, Span::Net(*net)),
        StructuralIssue::BadDriver { net, .. } | StructuralIssue::BadSink { net, .. } => {
            (LintCode::UnknownRef, Span::Net(*net))
        }
        StructuralIssue::CrossRefMismatch { net } => (LintCode::CrossRefMismatch, Span::Net(*net)),
        StructuralIssue::DuplicateSink { net, .. } => (LintCode::DuplicateSink, Span::Net(*net)),
        StructuralIssue::CombinationalCycle { gates } => (
            LintCode::CombinationalLoop,
            gates.first().map_or(Span::Design, |&g| Span::Gate(g)),
        ),
        StructuralIssue::UnobservableGate { gate } => {
            (LintCode::UnobservableGate, Span::Gate(*gate))
        }
        StructuralIssue::NoPrimaryInputs => (LintCode::NoPrimaryInputs, Span::Design),
        StructuralIssue::NoPrimaryOutputs => (LintCode::NoPrimaryOutputs, Span::Design),
        // `StructuralIssue` is non-exhaustive; a future issue kind surfaces
        // as a generic cross-reference error until it gets its own code.
        _ => (LintCode::CrossRefMismatch, Span::Design),
    };
    Diagnostic::new(code, span, issue.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::{raw, GateId, GateKind, NetId, NetlistBuilder};

    fn valid() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.add_input("a");
        let x = b.add_gate(GateKind::Inv, &[a]);
        let q = b.add_dff(x);
        b.add_output("q", q);
        b.finish().unwrap()
    }

    #[test]
    fn built_netlists_are_clean() {
        assert!(check_netlist(&valid()).is_empty());
    }

    #[test]
    fn cut_driver_maps_to_dangling_and_crossref() {
        let (name, gates, mut nets) = raw::parts_of(valid());
        let driver = nets[1].driver();
        nets[1] = raw::net(driver, &[]);
        let diags = check_parts(&gates, &nets);
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::DanglingNet && d.span == Span::Net(NetId::new(1))));
        assert!(diags.iter().any(|d| d.code == LintCode::CrossRefMismatch));
        let _ = name;
    }

    #[test]
    fn cycle_names_its_first_gate() {
        let gates = vec![
            raw::gate(GateKind::Buf, &[NetId::new(1)], Some(NetId::new(0))),
            raw::gate(GateKind::Buf, &[NetId::new(0)], Some(NetId::new(1))),
        ];
        let nets = vec![
            raw::net(GateId::new(0), &[(GateId::new(1), 0)]),
            raw::net(GateId::new(1), &[(GateId::new(0), 0)]),
        ];
        let diags = check_parts(&gates, &nets);
        let cycle = diags
            .iter()
            .find(|d| d.code == LintCode::CombinationalLoop)
            .expect("cycle detected");
        assert_eq!(cycle.span, Span::Gate(GateId::new(0)));
    }
}
