//! The check families, usable individually or via
//! [`LintRunner`](crate::LintRunner).
//!
//! Every pass is a plain function from borrowed data to a list of
//! [`Diagnostic`](crate::Diagnostic)s, so tests can point a single check at
//! deliberately corrupted inputs without assembling a full lint target.

pub mod dataflow;
pub mod dft;
pub mod m3d;
pub mod netlist;
pub mod tensor;
