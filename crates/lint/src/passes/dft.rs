//! DFT checks: the `L02xx` family.
//!
//! Scan correctness is what makes a failure log attributable at all: every
//! flop must be shiftable out exactly once ([`check_scan`]), and inserted
//! observation points must actually buy observability ([`check_tpi`]).

use m3d_dft::ScanChains;
use m3d_netlist::{FlopId, GateKind, Netlist};

use crate::diag::{Diagnostic, LintCode, Span};

/// Checks that the scan architecture covers the netlist's flops: every
/// flop in exactly one chain, no chain naming a nonexistent flop, chain
/// lengths within one of each other (round-robin balance).
pub fn check_scan(netlist: &Netlist, scan: &ScanChains) -> Vec<Diagnostic> {
    let n = netlist.flops().len();
    let mut seen = vec![0u32; n];
    let mut diags = Vec::new();
    for (c, chain) in scan.chains().iter().enumerate() {
        for &flop in chain {
            match seen.get_mut(flop.index()) {
                None => diags.push(Diagnostic::new(
                    LintCode::UnknownScanFlop,
                    Span::Chain(c as u16),
                    format!("chain {c} stitches flop {flop} but the netlist has {n} flops"),
                )),
                Some(count) => *count += 1,
            }
        }
    }
    for (i, &count) in seen.iter().enumerate() {
        let flop = FlopId::new(i);
        match count {
            0 => diags.push(Diagnostic::new(
                LintCode::UnscannedFlop,
                Span::Flop(flop),
                format!("flop {flop} appears in no scan chain"),
            )),
            1 => {}
            k => diags.push(Diagnostic::new(
                LintCode::DuplicateScanFlop,
                Span::Flop(flop),
                format!("flop {flop} is stitched into scan {k} times"),
            )),
        }
    }
    let lengths: Vec<usize> = scan.chains().iter().map(Vec::len).collect();
    let max = lengths.iter().copied().max().unwrap_or(0);
    let min = lengths.iter().copied().min().unwrap_or(0);
    if max > min + 1 {
        diags.push(Diagnostic::new(
            LintCode::ChainImbalance,
            Span::Design,
            format!("chain lengths span {min}..={max}; balance requires a gap of at most 1"),
        ));
    }
    diags
}

/// Checks inserted observation points on a TPI netlist (one whose name the
/// runner recognises by its `-tpi` suffix).
///
/// An observation point is a flop whose Q net feeds only a fresh primary
/// output. Tapping a net driven by a primary input or another flop is
/// *weak*: those values are already controllable/observable, so the point
/// buys nothing — the insertion heuristic should pick deep combinational
/// nets.
pub fn check_tpi(netlist: &Netlist) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &g in netlist.flops() {
        let Some(q) = netlist.gate(g).output() else {
            continue;
        };
        let sinks = netlist.net(q).sinks();
        let d_net = netlist.gate(g).inputs()[0];
        // A tap shares its net with the logic it observes (>= 2 sinks);
        // a functional pipeline flop is often its net's sole sink.
        let is_obs_point = sinks.len() == 1
            && netlist.gate(sinks[0].0).kind() == GateKind::Output
            && netlist.net(d_net).sinks().len() >= 2;
        if !is_obs_point {
            continue;
        }
        let tap_driver = netlist.net(d_net).driver();
        if !netlist.gate(tap_driver).kind().is_combinational() {
            diags.push(Diagnostic::new(
                LintCode::WeakObservationPoint,
                Span::Gate(g),
                format!(
                    "observation flop {g} taps net {d_net}, already driven by a {:?}",
                    netlist.gate(tap_driver).kind()
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_dft::ScanConfig;
    use m3d_netlist::generate::{Benchmark, GenParams};
    use m3d_netlist::tpi::insert_test_points;

    fn stitched() -> (Netlist, ScanChains) {
        let nl = Benchmark::Netcard.generate(&GenParams::small(1));
        let scan = ScanChains::new(&nl, ScanConfig::for_flop_count(nl.flops().len()));
        (nl, scan)
    }

    #[test]
    fn stitched_designs_are_clean() {
        let (nl, scan) = stitched();
        assert!(check_scan(&nl, &scan).is_empty());
    }

    #[test]
    fn scan_for_a_smaller_netlist_misses_flops() {
        let (_, scan) = stitched();
        let bigger = Benchmark::Netcard.generate(&GenParams::small(2));
        let small = Benchmark::Aes.generate(&GenParams::small(1));
        // Whichever direction the flop counts differ, something fires.
        let d1 = check_scan(&bigger, &scan);
        let d2 = check_scan(&small, &scan);
        assert!(
            d1.iter()
                .chain(&d2)
                .any(|d| matches!(d.code, LintCode::UnscannedFlop | LintCode::UnknownScanFlop)),
            "mismatched netlists must surface scan coverage errors"
        );
    }

    #[test]
    fn tpi_netlists_have_real_observation_points() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let tpi = insert_test_points(nl, 0.02, 7);
        // The insertion heuristic targets deep combinational nets, so the
        // inserted points must not be weak.
        assert!(check_tpi(&tpi).is_empty());
    }
}
