//! Flow-sensitive findings from `m3d-dataflow`: the `L1xxx` family.
//!
//! Unlike the structural families, these diagnostics describe properties
//! a perfectly well-formed design legitimately has — untestable input
//! cones, a few reconvergent constants — so the family is opt-in (see
//! [`Pass::Dataflow`](crate::Pass::Dataflow)) and meant to be gated with
//! a committed baseline rather than demanded clean.

use m3d_dataflow::{UntestableClass, VerifyConfig, VerifyReport};
use m3d_part::M3dDesign;

use crate::diag::{Diagnostic, LintCode, Span};

/// Runs every dataflow analysis over a design with default configuration.
pub fn check_design(design: &M3dDesign) -> Vec<Diagnostic> {
    let report = m3d_dataflow::verify_design(design, &VerifyConfig::default());
    report_diagnostics(design, &report)
}

/// Renders an existing [`VerifyReport`] as `L1xxx` diagnostics (lets the
/// CLI reuse one analysis run for both the report and the lint view).
pub fn report_diagnostics(design: &M3dDesign, report: &VerifyReport) -> Vec<Diagnostic> {
    let nl = design.netlist();
    let mut diags = Vec::new();

    for (net, value) in report.constprop.constant_nets() {
        diags.push(Diagnostic::new(
            LintCode::ConstantNet,
            Span::Net(net),
            format!("net {net} is statically constant {}", u8::from(value)),
        ));
    }
    for gate in report.constprop.redundant_gates(nl) {
        let out = nl.gate(gate).output().expect("combinational");
        let what = match report.constprop.alias(out) {
            Some((root, false)) => format!("copies net {root}"),
            Some((root, true)) => format!("inverts net {root}"),
            None => "computes a constant".to_string(),
        };
        diags.push(Diagnostic::new(
            LintCode::RedundantLogic,
            Span::Gate(gate),
            format!("{} gate {gate} {what}", nl.gate(gate).kind()),
        ));
    }

    for v in &report.sites {
        let (code, why) = match v.class {
            Some(UntestableClass::NoLaunch) => (
                LintCode::UntestableNoLaunch,
                "site net is not sequentially driven",
            ),
            Some(UntestableClass::NoCapture) => (
                LintCode::UntestableNoCapture,
                "no structural path to a scan capture point",
            ),
            Some(UntestableClass::ConstantSite) => (
                LintCode::UntestableConstant,
                "site net is statically constant",
            ),
            None => continue,
        };
        diags.push(Diagnostic::new(
            code,
            Span::Site(v.site),
            format!("transition faults here are untestable: {why}"),
        ));
    }

    let slack = report.slack_site_count();
    if slack > 0 {
        diags.push(Diagnostic::new(
            LintCode::SmallDelayEscapes,
            Span::Design,
            format!(
                "{slack} of {} testable sites admit delay defects up to {:.2} \
                 (>= {:.0}% of the {:.2} clock) that gross-TDF testing misses",
                report.sites.iter().filter(|v| v.class.is_none()).count(),
                report.slack_threshold,
                100.0 * report.slack_threshold / report.clock_period,
                report.clock_period,
            ),
        ));
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    #[test]
    fn archetype_findings_cover_expected_families() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let diags = check_design(&d);
        assert!(!diags.is_empty());
        // Aes at this size has reconvergent constants, untestable cones,
        // and a non-empty slack surface.
        let has = |c: LintCode| diags.iter().any(|d| d.code == c);
        assert!(has(LintCode::ConstantNet));
        assert!(has(LintCode::RedundantLogic));
        assert!(has(LintCode::UntestableConstant));
        assert!(has(LintCode::UntestableNoLaunch));
        // No errors: these are advisory findings.
        assert!(diags
            .iter()
            .all(|d| d.severity != crate::diag::Severity::Error));
    }
}
