//! M3D partition and MIV checks: the `L01xx` family.
//!
//! The invariant under test is the paper's MIV model: every inter-tier
//! (cut) net carries exactly one MIV between its driver and the far-tier
//! sinks, MIVs sit only on cut nets, and the fault-site table extends the
//! pin sites by exactly one site per MIV.

use m3d_netlist::Netlist;
use m3d_part::{M3dDesign, Miv, Partition, Tier};

use crate::diag::{Diagnostic, LintCode, Span};

/// Tier-area imbalance above this bound draws a [`LintCode::TierImbalance`]
/// warning. Generators target < 0.2; 0.4 flags genuinely lopsided splits
/// without tripping on small designs.
pub const IMBALANCE_BOUND: f32 = 0.4;

/// Runs every M3D check over a partitioned design.
pub fn check_design(design: &M3dDesign) -> Vec<Diagnostic> {
    let nl = design.netlist();
    let mut diags = check_partition(nl, design.partition());
    diags.extend(check_miv_table(nl, design.partition(), design.mivs()));
    // Per-net MIV index must agree with the MIV table both ways.
    for (i, m) in design.mivs().iter().enumerate() {
        if m.net.index() < nl.net_count() && design.miv_on_net(m.net) != Some(i as u32) {
            diags.push(Diagnostic::new(
                LintCode::SpuriousMiv,
                Span::Miv(i as u32),
                format!("MIV {i} on net {} missing from the per-net index", m.net),
            ));
        }
    }
    diags.extend(check_site_table(design));
    diags
}

/// Checks a tier assignment against its netlist.
pub fn check_partition(netlist: &Netlist, partition: &Partition) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let tiers = partition.tiers();
    if tiers.len() != netlist.gate_count() {
        diags.push(Diagnostic::new(
            LintCode::PartitionSizeMismatch,
            Span::Design,
            format!(
                "partition labels {} gates but the netlist has {}",
                tiers.len(),
                netlist.gate_count()
            ),
        ));
        return diags; // tier lookups below would be meaningless
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        let id = m3d_netlist::GateId::new(i);
        if matches!(
            g.kind(),
            m3d_netlist::GateKind::Input | m3d_netlist::GateKind::Output
        ) && tiers[i] != Tier::Bottom
        {
            diags.push(Diagnostic::new(
                LintCode::PseudoCellTier,
                Span::Gate(id),
                format!("pseudo I/O cell {id} placed on the {:?} tier", tiers[i]),
            ));
        }
    }
    let imbalance = partition.imbalance(netlist);
    if imbalance > IMBALANCE_BOUND {
        diags.push(Diagnostic::new(
            LintCode::TierImbalance,
            Span::Design,
            format!("tier area imbalance {imbalance:.2} exceeds {IMBALANCE_BOUND}"),
        ));
    }
    diags
}

/// Checks an MIV table against a netlist and partition: one MIV per cut
/// net, none elsewhere, each crossing to at least one far-tier sink.
pub fn check_miv_table(netlist: &Netlist, partition: &Partition, mivs: &[Miv]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if partition.tiers().len() != netlist.gate_count() {
        // check_partition reports this; MIV/tier lookups are meaningless.
        return diags;
    }
    let mut miv_count_of_net = vec![0u32; netlist.net_count()];
    for (i, m) in mivs.iter().enumerate() {
        let span = Span::Miv(i as u32);
        if m.net.index() >= netlist.net_count() {
            diags.push(Diagnostic::new(
                LintCode::SpuriousMiv,
                span,
                format!("MIV {i} sits on nonexistent net {}", m.net),
            ));
            continue;
        }
        miv_count_of_net[m.net.index()] += 1;
        let net = netlist.net(m.net);
        let driver_tier = partition.tier(net.driver());
        if m.driver_tier != driver_tier {
            diags.push(Diagnostic::new(
                LintCode::SpuriousMiv,
                span,
                format!(
                    "MIV {i} records driver tier {:?} but net {} is driven from {:?}",
                    m.driver_tier, m.net, driver_tier
                ),
            ));
        }
        let far_sinks = net
            .sinks()
            .iter()
            .filter(|&&(s, _)| partition.tier(s) != driver_tier)
            .count();
        if far_sinks == 0 {
            let code = if net
                .sinks()
                .iter()
                .all(|&(s, _)| partition.tier(s) == driver_tier)
                && !net.sinks().is_empty()
            {
                LintCode::SpuriousMiv // net is not cut at all
            } else {
                LintCode::MivWithoutFarSinks
            };
            diags.push(Diagnostic::new(
                code,
                span,
                format!("MIV {i} on net {} crosses to no far-tier sink", m.net),
            ));
        }
    }
    for cut in partition.cut_nets(netlist) {
        match miv_count_of_net[cut.index()] {
            0 => diags.push(Diagnostic::new(
                LintCode::MissingMiv,
                Span::Net(cut),
                format!("inter-tier net {cut} has no MIV"),
            )),
            1 => {}
            n => diags.push(Diagnostic::new(
                LintCode::SpuriousMiv,
                Span::Net(cut),
                format!("inter-tier net {cut} carries {n} MIVs; expected exactly 1"),
            )),
        }
    }
    diags
}

/// Checks that the fault-site table covers every gate pin once plus one
/// site per MIV.
pub fn check_site_table(design: &M3dDesign) -> Vec<Diagnostic> {
    let nl = design.netlist();
    let expected_pins: usize = nl
        .gates()
        .iter()
        .map(|g| g.inputs().len() + usize::from(g.kind().has_output()))
        .sum();
    let sites = design.sites();
    let mut diags = Vec::new();
    if sites.pin_site_count() != expected_pins {
        diags.push(Diagnostic::new(
            LintCode::SiteTableMismatch,
            Span::Design,
            format!(
                "site table has {} pin sites but the netlist has {} pins",
                sites.pin_site_count(),
                expected_pins
            ),
        ));
    }
    let expected_total = sites.pin_site_count() + design.miv_count();
    if sites.len() != expected_total {
        diags.push(Diagnostic::new(
            LintCode::SiteTableMismatch,
            Span::Design,
            format!(
                "site table has {} sites; expected {} (pins + {} MIVs)",
                sites.len(),
                expected_total,
                design.miv_count()
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::{Benchmark, GenParams};
    use m3d_part::PartitionAlgo;

    fn design() -> M3dDesign {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let part = PartitionAlgo::MinCut.partition(&nl, 1);
        M3dDesign::new(nl, part)
    }

    #[test]
    fn real_designs_are_clean() {
        assert!(check_design(&design()).is_empty());
    }

    #[test]
    fn dropped_miv_is_missing() {
        let d = design();
        let mut mivs = d.mivs().to_vec();
        let dropped = mivs.remove(0);
        let diags = check_miv_table(d.netlist(), d.partition(), &mivs);
        assert!(diags
            .iter()
            .any(|g| g.code == LintCode::MissingMiv && g.span == Span::Net(dropped.net)));
    }

    #[test]
    fn miv_on_uncut_net_is_spurious() {
        let d = design();
        let uncut = (0..d.netlist().net_count())
            .map(m3d_netlist::NetId::new)
            .find(|&n| d.miv_on_net(n).is_none())
            .expect("most nets are uncut");
        let mut mivs = d.mivs().to_vec();
        mivs.push(Miv {
            net: uncut,
            driver_tier: d.tier_of_gate(d.netlist().net(uncut).driver()),
        });
        let diags = check_miv_table(d.netlist(), d.partition(), &mivs);
        assert!(diags.iter().any(|g| g.code == LintCode::SpuriousMiv));
    }

    #[test]
    fn partition_for_the_wrong_netlist_is_rejected() {
        let d = design();
        let other = Benchmark::Tate.generate(&GenParams::small(1));
        let diags = check_partition(&other, d.partition());
        assert!(diags
            .iter()
            .any(|g| g.code == LintCode::PartitionSizeMismatch));
    }
}
