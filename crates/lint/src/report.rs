//! Machine- and human-readable lint reports.

use std::fmt;

use crate::diag::{Diagnostic, LintCode, Severity, Span};

/// How many diagnostics of one code a report keeps before suppressing the
/// rest (totals still count them; see [`LintReport::total_count`]).
pub const MAX_PER_CODE: usize = 32;

/// The result of a lint run: every diagnostic found over one target.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    target: String,
    diagnostics: Vec<Diagnostic>,
    /// Per code: total pushed (including suppressed beyond [`MAX_PER_CODE`]).
    counts: Vec<(LintCode, usize)>,
}

impl LintReport {
    /// An empty report for the named target.
    pub fn new(target: impl Into<String>) -> Self {
        LintReport {
            target: target.into(),
            diagnostics: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// The target name (design, file, or benchmark).
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Adds a diagnostic. After [`MAX_PER_CODE`] diagnostics of one code, a
    /// single suppression note is recorded and further ones only count.
    pub fn push(&mut self, d: Diagnostic) {
        let total = match self.counts.iter_mut().find(|(c, _)| *c == d.code) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                self.counts.push((d.code, 1));
                1
            }
        };
        match total.cmp(&(MAX_PER_CODE + 1)) {
            std::cmp::Ordering::Less => self.diagnostics.push(d),
            std::cmp::Ordering::Equal => self.diagnostics.push(Diagnostic {
                message: format!(
                    "further {} diagnostics suppressed (see total counts)",
                    d.code
                ),
                span: Span::Design,
                ..d
            }),
            std::cmp::Ordering::Greater => {}
        }
    }

    /// The retained diagnostics.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Total diagnostics pushed for a code, including suppressed ones.
    pub fn total_count(&self, code: LintCode) -> usize {
        self.counts
            .iter()
            .find(|(c, _)| *c == code)
            .map_or(0, |&(_, n)| n)
    }

    /// Whether any retained diagnostic carries the given code.
    pub fn has(&self, code: LintCode) -> bool {
        self.total_count(code) > 0
    }

    /// Number of retained diagnostics at a severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Retained error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Retained warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// A report is clean when it carries no errors (warnings and info are
    /// allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Appends every diagnostic of `other` (same suppression accounting).
    pub fn merge(&mut self, other: LintReport) {
        for d in other.diagnostics {
            self.push(d);
        }
    }

    /// Keeps only diagnostics the predicate accepts and rebuilds the
    /// per-code totals from the survivors (overflow counts beyond
    /// [`MAX_PER_CODE`] are dropped with their suppressed diagnostics).
    /// This is how `--baseline` waives previously accepted findings.
    pub fn retain(&mut self, mut keep: impl FnMut(&Diagnostic) -> bool) {
        self.diagnostics.retain(|d| keep(d));
        self.counts.clear();
        let counted: Vec<LintCode> = self.diagnostics.iter().map(|d| d.code).collect();
        for code in counted {
            match self.counts.iter_mut().find(|(c, _)| *c == code) {
                Some((_, n)) => *n += 1,
                None => self.counts.push((code, 1)),
            }
        }
    }

    /// Sorts diagnostics by severity (errors first), then code, then span
    /// order of emission (stable).
    pub fn sorted(mut self) -> Self {
        self.diagnostics
            .sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(&b.code)));
        self
    }

    /// Renders the rustc-style text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out.push_str(&format!(
            "{}: {} error{}, {} warning{}, {} info\n",
            self.target,
            self.error_count(),
            if self.error_count() == 1 { "" } else { "s" },
            self.warning_count(),
            if self.warning_count() == 1 { "" } else { "s" },
            self.count(Severity::Info),
        ));
        out
    }

    /// Renders the report as a JSON object (stable field order, no trailing
    /// newline).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"target\":{},", json_string(&self.target)));
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},",
            self.error_count(),
            self.warning_count(),
            self.count(Severity::Info)
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"span\":{},\"message\":{}}}",
                d.code,
                d.severity,
                json_span(d.span),
                json_string(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

fn json_span(span: Span) -> String {
    match span {
        Span::Design => "{\"kind\":\"design\"}".to_owned(),
        Span::Gate(g) => format!("{{\"kind\":\"gate\",\"id\":{}}}", g.index()),
        Span::Net(n) => format!("{{\"kind\":\"net\",\"id\":{}}}", n.index()),
        Span::Flop(x) => format!("{{\"kind\":\"flop\",\"id\":{}}}", x.index()),
        Span::Site(s) => format!("{{\"kind\":\"site\",\"id\":{}}}", s.index()),
        Span::Miv(m) => format!("{{\"kind\":\"miv\",\"id\":{m}}}"),
        Span::Chain(c) => format!("{{\"kind\":\"chain\",\"id\":{c}}}"),
        Span::Node(v) => format!("{{\"kind\":\"node\",\"id\":{v}}}"),
        Span::Feature { node, col } => {
            format!("{{\"kind\":\"feature\",\"node\":{node},\"col\":{col}}}")
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::NetId;

    fn diag(code: LintCode, msg: &str) -> Diagnostic {
        Diagnostic::new(code, Span::Net(NetId::new(1)), msg)
    }

    #[test]
    fn counts_and_cleanliness() {
        let mut r = LintReport::new("t");
        assert!(r.is_clean());
        r.push(diag(LintCode::DanglingNet, "x"));
        r.push(Diagnostic::new(LintCode::TierImbalance, Span::Design, "y"));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert!(r.has(LintCode::DanglingNet));
        assert!(!r.has(LintCode::NoFlops));
    }

    #[test]
    fn suppression_caps_retained_but_counts_all() {
        let mut r = LintReport::new("t");
        for i in 0..(MAX_PER_CODE + 10) {
            r.push(diag(LintCode::NonFiniteFeature, &format!("v{i}")));
        }
        // MAX retained + 1 suppression note.
        assert_eq!(r.diagnostics().len(), MAX_PER_CODE + 1);
        assert_eq!(r.total_count(LintCode::NonFiniteFeature), MAX_PER_CODE + 10);
    }

    #[test]
    fn sorted_puts_errors_first() {
        let mut r = LintReport::new("t");
        r.push(Diagnostic::new(LintCode::TierImbalance, Span::Design, "w"));
        r.push(diag(LintCode::DanglingNet, "e"));
        let r = r.sorted();
        assert_eq!(r.diagnostics()[0].severity, Severity::Error);
    }

    #[test]
    fn text_render_has_summary_line() {
        let mut r = LintReport::new("AES");
        r.push(diag(LintCode::DanglingNet, "net n1 has no sinks"));
        let text = r.render_text();
        assert!(text.contains("error[L0002]"));
        assert!(text
            .trim_end()
            .ends_with("AES: 1 error, 0 warnings, 0 info"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = LintReport::new("a \"b\"\n");
        r.push(diag(LintCode::DanglingNet, "msg with \\ and \t"));
        let json = r.render_json();
        assert!(json.starts_with("{\"target\":\"a \\\"b\\\"\\n\""));
        assert!(json.contains("\"code\":\"L0002\""));
        assert!(json.contains("\"span\":{\"kind\":\"net\",\"id\":1}"));
        assert!(json.contains("msg with \\\\ and \\t"));
        assert!(json.ends_with("]}"));
        // Balanced braces/brackets (cheap well-formedness proxy).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn retain_filters_and_recounts() {
        let mut r = LintReport::new("t");
        r.push(diag(LintCode::DanglingNet, "keep"));
        r.push(diag(LintCode::NoFlops, "drop"));
        r.push(Diagnostic::new(
            LintCode::TierImbalance,
            Span::Design,
            "keep",
        ));
        r.retain(|d| d.message == "keep");
        assert_eq!(r.diagnostics().len(), 2);
        assert!(r.has(LintCode::DanglingNet));
        assert!(!r.has(LintCode::NoFlops));
        assert_eq!(r.total_count(LintCode::NoFlops), 0);
        assert_eq!(r.total_count(LintCode::TierImbalance), 1);
    }

    #[test]
    fn merge_combines_reports() {
        let mut a = LintReport::new("t");
        a.push(diag(LintCode::DanglingNet, "x"));
        let mut b = LintReport::new("u");
        b.push(diag(LintCode::NoFlops, "y"));
        a.merge(b);
        assert_eq!(a.diagnostics().len(), 2);
    }
}
