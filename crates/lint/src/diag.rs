//! Diagnostic codes, severities, and spans.

use std::fmt;

use m3d_netlist::{FlopId, GateId, NetId, SiteId};

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational; never affects cleanliness.
    Info,
    /// Suspicious but representable structure; a clean report may carry
    /// warnings.
    Warn,
    /// A hard invariant violation; downstream passes may panic or produce
    /// garbage.
    Error,
}

impl Severity {
    /// Lower-case name as rendered in reports (`error`, `warning`, `info`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! lint_codes {
    ($($(#[$meta:meta])* $variant:ident = ($code:literal, $sev:ident, $summary:literal),)+) => {
        /// Stable diagnostic codes, one per implemented check.
        ///
        /// Codes are grouped by pass family: `L00xx` netlist DRC, `L01xx`
        /// M3D partition/MIV checks, `L02xx` DFT scan/TPI checks, `L03xx`
        /// graph-tensor checks, `L1xxx` flow-sensitive dataflow findings
        /// (`m3d-dataflow`). Codes are never renumbered; retired checks
        /// leave holes. The full catalogue lives in `DESIGN.md`.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum LintCode {
            $($(#[$meta])* $variant,)+
        }

        impl LintCode {
            /// Every implemented code, ascending.
            pub const ALL: &'static [LintCode] = &[$(LintCode::$variant,)+];

            /// The stable `L0xxx` code string.
            pub fn code(self) -> &'static str {
                match self { $(LintCode::$variant => $code,)+ }
            }

            /// The default severity of the check.
            pub fn severity(self) -> Severity {
                match self { $(LintCode::$variant => Severity::$sev,)+ }
            }

            /// One-line description of what the check catches.
            pub fn summary(self) -> &'static str {
                match self { $(LintCode::$variant => $summary,)+ }
            }
        }
    };
}

lint_codes! {
    /// The combinational core contains a cycle.
    CombinationalLoop = ("L0001", Error, "combinational feedback loop"),
    /// A net has no sinks.
    DanglingNet = ("L0002", Error, "net with no fan-out branches"),
    /// A gate, net, edge, or site references an object that does not exist.
    UnknownRef = ("L0003", Error, "dangling reference to a nonexistent object"),
    /// A gate has an illegal number of input pins for its kind.
    ArityViolation = ("L0004", Error, "illegal pin count for the gate kind"),
    /// Output connectivity is illegal: a driving gate without an output
    /// net, or an `Output` pseudo cell with one.
    OutputPinViolation = ("L0005", Error, "illegal output-pin connectivity"),
    /// Net driver/sink tables disagree with gate pin lists (includes
    /// multi-driven nets).
    CrossRefMismatch = ("L0006", Error, "net/pin cross-reference mismatch"),
    /// The same `(gate, pin)` branch appears twice on one net.
    DuplicateSink = ("L0007", Error, "duplicated fan-out branch"),
    /// The design has no flip-flops; scan test is impossible.
    NoFlops = ("L0008", Error, "design without flip-flops"),
    /// A combinational gate reaches no primary output or flop D pin.
    UnobservableGate = ("L0009", Warn, "dead logic cone"),
    /// The design has no primary inputs.
    NoPrimaryInputs = ("L0010", Warn, "design without primary inputs"),
    /// The design has no primary outputs.
    NoPrimaryOutputs = ("L0011", Warn, "design without primary outputs"),
    /// An inter-tier (cut) net has no MIV assigned.
    MissingMiv = ("L0101", Error, "cut net without an MIV"),
    /// An MIV sits on a net that is not cut, or records the wrong driver
    /// tier, or the MIV table disagrees with the per-net index.
    SpuriousMiv = ("L0102", Error, "MIV on an uncut net or wrong tier"),
    /// An MIV whose net has no sink on the far tier.
    MivWithoutFarSinks = ("L0103", Error, "MIV crossing to no far-tier sink"),
    /// The fault-site table disagrees with the netlist pins + MIV count.
    SiteTableMismatch = ("L0104", Error, "site table out of sync with design"),
    /// Tier areas are imbalanced beyond the accepted bound.
    TierImbalance = ("L0105", Warn, "tier area imbalance above bound"),
    /// The partition's tier vector length disagrees with the gate count.
    PartitionSizeMismatch = ("L0106", Error, "partition covers wrong gate count"),
    /// A pseudo I/O cell is not pinned to the bottom tier.
    PseudoCellTier = ("L0107", Info, "pseudo I/O cell off the bottom tier"),
    /// A flip-flop of the netlist appears in no scan chain.
    UnscannedFlop = ("L0201", Error, "flop unreachable by scan"),
    /// A flip-flop appears more than once across the scan chains.
    DuplicateScanFlop = ("L0202", Error, "flop stitched into scan twice"),
    /// A scan chain references a flop the netlist does not have.
    UnknownScanFlop = ("L0203", Error, "scan chain names a nonexistent flop"),
    /// Scan chain lengths differ by more than one.
    ChainImbalance = ("L0204", Warn, "unbalanced scan chains"),
    /// A TPI observation flop taps a source-driven (easy) net.
    WeakObservationPoint = ("L0205", Warn, "observation point on an easy net"),
    /// A feature-matrix entry is NaN or infinite.
    NonFiniteFeature = ("L0301", Error, "non-finite feature value"),
    /// The feature matrix does not have the Table II column count.
    FeatureShape = ("L0302", Error, "feature matrix with wrong shape"),
    /// A feature value falls outside its column's expected range.
    FeatureRange = ("L0303", Warn, "feature value out of expected range"),
    /// A sub-graph's site list is unsorted or contains duplicates.
    UnsortedSites = ("L0304", Error, "sub-graph site list unsorted"),
    /// A sub-graph MIV node is out of range or not an MIV site.
    BadMivNode = ("L0305", Error, "invalid MIV node in sub-graph"),
    /// A diagnosis sample's labels disagree with its design or injection.
    LabelMismatch = ("L0306", Error, "sample label/candidate inconsistency"),
    /// A net is statically constant (reconvergent logic ties it down).
    ConstantNet = ("L1001", Warn, "statically constant net"),
    /// A gate computes a constant or a copy of another net.
    RedundantLogic = ("L1002", Warn, "redundant logic"),
    /// A TDF site that can never launch: its net is not sequentially
    /// driven, so it holds its value across the two at-speed frames.
    UntestableNoLaunch = ("L1101", Warn, "TDF site cannot launch"),
    /// A TDF site whose fault effect has no structural path to a scan
    /// capture point.
    UntestableNoCapture = ("L1102", Warn, "TDF effect cannot reach capture"),
    /// A TDF site on a proven-constant net: the activation condition
    /// never holds.
    UntestableConstant = ("L1103", Warn, "TDF site frozen by constant net"),
    /// Small-delay escape surface: testable sites whose minimum
    /// detectable defect size is a large fraction of the clock period.
    SmallDelayEscapes = ("L1201", Info, "small-delay escape surface"),
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// What a diagnostic points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Span {
    /// The design as a whole.
    Design,
    /// A gate.
    Gate(GateId),
    /// A net.
    Net(NetId),
    /// A flip-flop.
    Flop(FlopId),
    /// A fault site.
    Site(SiteId),
    /// An MIV by index.
    Miv(u32),
    /// A scan chain by index.
    Chain(u16),
    /// A graph node by index.
    Node(usize),
    /// One feature-matrix cell.
    Feature {
        /// Node (row) index.
        node: usize,
        /// Feature (column) index.
        col: usize,
    },
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Design => write!(f, "design"),
            Span::Gate(g) => write!(f, "gate {g}"),
            Span::Net(n) => write!(f, "net {n}"),
            Span::Flop(x) => write!(f, "flop {x}"),
            Span::Site(s) => write!(f, "site {s}"),
            Span::Miv(m) => write!(f, "miv {m}"),
            Span::Chain(c) => write!(f, "chain {c}"),
            Span::Node(v) => write!(f, "node {v}"),
            Span::Feature { node, col } => write!(f, "node {node} col {col}"),
        }
    }
}

/// One finding: a code, its severity, the object it names, and a message.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The stable check code.
    pub code: LintCode,
    /// Severity (defaults to [`LintCode::severity`]).
    pub severity: Severity,
    /// The offending object.
    pub span: Span,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(code: LintCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}",
            self.severity, self.code, self.message, self.span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = Vec::new();
        for &c in LintCode::ALL {
            let code = c.code();
            assert!(code.starts_with('L') && code.len() == 5, "{code}");
            assert!(!seen.contains(&code), "duplicate {code}");
            seen.push(code);
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn codes_are_ascending_in_declaration_order() {
        let codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted);
    }

    #[test]
    fn severity_orders_and_renders() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert_eq!(Severity::Warn.name(), "warning");
    }

    #[test]
    fn diagnostic_renders_rustc_style() {
        let d = Diagnostic::new(
            LintCode::DanglingNet,
            Span::Net(NetId::new(4)),
            "net n4 has no sinks",
        );
        let text = d.to_string();
        assert!(text.starts_with("error[L0002]: net n4 has no sinks"));
        assert!(text.contains("--> net n4"));
    }
}
