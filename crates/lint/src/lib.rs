//! Structural static analysis (DRC/lint) for the M3D fault-localization
//! workspace.
//!
//! The paper's pipeline moves a design through four representations —
//! netlist, two-tier partition, scan architecture, and GNN input tensors —
//! and a defect introduced in any of them silently corrupts everything
//! downstream. This crate makes those invariants checkable: every check
//! owns a stable `L0xxx` code ([`LintCode`]), a default [`Severity`], and a
//! [`Span`] naming the offending gate, net, flop, site, MIV, chain, or
//! tensor cell.
//!
//! Code families:
//!
//! * `L00xx` — netlist DRC (combinational loops, dangling nets, arity,
//!   cross-references), delegating to `m3d_netlist::check` so lint and
//!   construction-time validation can never diverge;
//! * `L01xx` — M3D checks (one MIV per cut net, tier balance, site table);
//! * `L02xx` — DFT checks (scan coverage, chain balance, TPI quality);
//! * `L03xx` — tensor checks (edge bounds, NaN-free features, labels).
//!
//! # Examples
//!
//! ```
//! use m3d_netlist::generate::{Benchmark, GenParams};
//! use m3d_part::{M3dDesign, PartitionAlgo};
//! use m3d_lint::{LintRunner, LintTarget};
//!
//! let nl = Benchmark::Aes.generate(&GenParams::small(1));
//! let part = PartitionAlgo::MinCut.partition(&nl, 1);
//! let design = M3dDesign::new(nl, part);
//! let report = LintRunner::new().run(&LintTarget::new("aes").design(&design));
//! assert!(report.is_clean());
//! println!("{}", report.render_text());
//! ```

#![warn(missing_docs)]

mod diag;
pub mod passes;
mod report;
mod runner;

pub use diag::{Diagnostic, LintCode, Severity, Span};
pub use report::{LintReport, MAX_PER_CODE};
pub use runner::{LintRunner, LintTarget, Pass};
