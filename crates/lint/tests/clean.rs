//! Clean-by-construction properties: everything the generators, the
//! partitioners, the scan stitcher, and the sample pipeline produce must
//! lint without errors — across all four benchmark archetypes and random
//! seeds, not just the fixtures the unit tests use.

use proptest::prelude::*;

use m3d_dft::{ObsMode, ScanChains, ScanConfig};
use m3d_fault_localization::{generate_samples, InjectionKind, TestEnv};
use m3d_lint::{LintRunner, LintTarget};
use m3d_netlist::generate::{Benchmark, GenParams};
use m3d_netlist::tpi::insert_test_points;
use m3d_part::{DesignConfig, M3dDesign, PartitionAlgo};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Archetype × seed × size × partition algorithm: the full design
    /// (netlist DRC, M3D checks, scan checks) carries no errors and no
    /// warnings.
    #[test]
    fn random_archetype_designs_lint_clean(
        bench in 0u8..4,
        seed in 1u64..50,
        target in 250usize..450,
        algo in 0u8..3,
    ) {
        let bench = Benchmark::ALL[bench as usize];
        let nl = bench.generate(&GenParams::new(seed).with_target(target));
        let algo = [
            PartitionAlgo::MinCut,
            PartitionAlgo::LevelBanded,
            PartitionAlgo::Random,
        ][algo as usize];
        let part = algo.partition(&nl, seed);
        let scan = ScanChains::new(&nl, ScanConfig::for_flop_count(nl.flops().len()));
        let design = M3dDesign::new(nl, part);
        let report = LintRunner::new().run(
            &LintTarget::new(format!("{}-s{seed}", bench.name()))
                .design(&design)
                .scan(&scan),
        );
        prop_assert!(
            report.is_clean() && report.warning_count() == 0,
            "{}",
            report.render_text()
        );
    }

    /// Test-point insertion keeps every archetype error-free (weak-point
    /// warnings are allowed but the AES insertion heuristic avoids them).
    #[test]
    fn tpi_netlists_lint_without_errors(bench in 0u8..4, seed in 1u64..20) {
        let bench = Benchmark::ALL[bench as usize];
        let nl = bench.generate(&GenParams::new(seed).with_target(300));
        let tpi = insert_test_points(nl, 0.02, seed);
        let report = LintRunner::new().run(&LintTarget::new(tpi.name()).netlist(&tpi));
        prop_assert!(report.is_clean(), "{}", report.render_text());
    }
}

/// The end-to-end sample pipeline — injection, failure logs, back-traced
/// sub-graphs, labels — lints clean, tensors included.
#[test]
fn generated_samples_lint_clean() {
    let env = TestEnv::build(Benchmark::Tate, DesignConfig::Syn1, Some(300));
    let fsim = env.fault_sim();
    for mode in ObsMode::ALL {
        let samples = generate_samples(&env, &fsim, mode, InjectionKind::Single, 6, 3);
        let report = LintRunner::new().run(
            &LintTarget::new(format!("tate-{}", mode.name()))
                .design(&env.design)
                .scan(&env.scan)
                .samples(&samples),
        );
        assert!(
            report.is_clean() && report.warning_count() == 0,
            "{}",
            report.render_text()
        );
    }
}
