//! Mutation suite: every implemented `L0xxx` code must be reachable.
//!
//! Each scenario takes a known-good artifact (or builds a minimal one
//! through the unchecked `raw` escape hatches), applies one targeted
//! corruption, and asserts the expected code fires. The final test unions
//! every scenario and checks the whole [`LintCode`] catalogue is covered,
//! so adding a code without a reaching mutation fails CI.

use std::sync::OnceLock;

use m3d_dft::{ObsMode, ScanChains};
use m3d_fault_localization::{generate_samples, DiagSample, InjectionKind, TestEnv};
use m3d_gnn::{GcnGraph, GraphData, Matrix};
use m3d_hetgraph::FEATURE_DIM;
use m3d_lint::passes::{dataflow, dft, m3d, netlist, tensor};
use m3d_lint::{Diagnostic, LintCode};
use m3d_netlist::generate::{Benchmark, GenParams};
use m3d_netlist::{
    raw, FlopId, GateId, GateKind, NetId, Netlist, NetlistBuilder, SitePos, SiteTable,
};
use m3d_part::{DesignConfig, M3dDesign, Miv, Partition, PartitionAlgo, Tier};

fn has(diags: &[Diagnostic], code: LintCode) -> bool {
    diags.iter().any(|d| d.code == code)
}

/// A small valid netlist: `a -> INV -> DFF -> q`.
fn valid() -> Netlist {
    let mut b = NetlistBuilder::new("t");
    let a = b.add_input("a");
    let x = b.add_gate(GateKind::Inv, &[a]);
    let q = b.add_dff(x);
    b.add_output("q", q);
    b.finish().unwrap()
}

/// A partitioned benchmark design shared by the M3D scenarios.
fn aes_design() -> &'static M3dDesign {
    static DESIGN: OnceLock<M3dDesign> = OnceLock::new();
    DESIGN.get_or_init(|| {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let part = PartitionAlgo::MinCut.partition(&nl, 1);
        M3dDesign::new(nl, part)
    })
}

/// A full test environment with real diagnosis samples (tensor scenarios).
fn env_with_samples() -> &'static (TestEnv, Vec<DiagSample>) {
    static ENV: OnceLock<(TestEnv, Vec<DiagSample>)> = OnceLock::new();
    ENV.get_or_init(|| {
        let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, Some(300));
        let fsim = env.fault_sim();
        let samples = generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, 8, 11);
        (env, samples)
    })
}

fn sample_with_subgraph() -> (&'static M3dDesign, DiagSample) {
    let (env, samples) = env_with_samples();
    let s = samples
        .iter()
        .find(|s| s.subgraph.is_some())
        .expect("bypass sampling back-traces at least one sub-graph")
        .clone();
    (&env.design, s)
}

// ---------------------------------------------------------------- L00xx --

fn combinational_loop() -> Vec<Diagnostic> {
    let gates = vec![
        raw::gate(GateKind::Buf, &[NetId::new(1)], Some(NetId::new(0))),
        raw::gate(GateKind::Buf, &[NetId::new(0)], Some(NetId::new(1))),
    ];
    let nets = vec![
        raw::net(GateId::new(0), &[(GateId::new(1), 0)]),
        raw::net(GateId::new(1), &[(GateId::new(0), 0)]),
    ];
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0001_combinational_loop() {
    assert!(has(&combinational_loop(), LintCode::CombinationalLoop));
}

fn cut_driver() -> Vec<Diagnostic> {
    let (_, gates, mut nets) = raw::parts_of(valid());
    let driver = nets[1].driver();
    nets[1] = raw::net(driver, &[]); // INV output no longer reaches the DFF
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0002_dangling_net() {
    assert!(has(&cut_driver(), LintCode::DanglingNet));
}

fn unknown_net_ref() -> Vec<Diagnostic> {
    let (_, mut gates, nets) = raw::parts_of(valid());
    gates[1] = raw::gate(GateKind::Inv, &[NetId::new(99)], gates[1].output());
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0003_unknown_ref() {
    assert!(has(&unknown_net_ref(), LintCode::UnknownRef));
}

fn bad_arity() -> Vec<Diagnostic> {
    let (_, mut gates, nets) = raw::parts_of(valid());
    let out = gates[1].output();
    gates[1] = raw::gate(GateKind::Inv, &[NetId::new(0), NetId::new(0)], out);
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0004_arity_violation() {
    assert!(has(&bad_arity(), LintCode::ArityViolation));
}

fn missing_output_pin() -> Vec<Diagnostic> {
    let (_, mut gates, nets) = raw::parts_of(valid());
    gates[1] = raw::gate(GateKind::Inv, &[NetId::new(0)], None);
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0005_output_pin_violation() {
    assert!(has(&missing_output_pin(), LintCode::OutputPinViolation));
}

fn crossref_mismatch() -> Vec<Diagnostic> {
    let (_, gates, mut nets) = raw::parts_of(valid());
    // Net n0 claims the OUTPUT gate (g3) as a sink, but g3's pin 0 is n2.
    let sinks: Vec<(GateId, u8)> = nets[0]
        .sinks()
        .iter()
        .copied()
        .chain([(GateId::new(3), 0)])
        .collect();
    nets[0] = raw::net(nets[0].driver(), &sinks);
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0006_crossref_mismatch() {
    assert!(has(&crossref_mismatch(), LintCode::CrossRefMismatch));
}

fn duplicate_sink() -> Vec<Diagnostic> {
    let (_, gates, mut nets) = raw::parts_of(valid());
    let first = nets[0].sinks()[0];
    let sinks: Vec<(GateId, u8)> = nets[0].sinks().iter().copied().chain([first]).collect();
    nets[0] = raw::net(nets[0].driver(), &sinks);
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0007_duplicate_sink() {
    assert!(has(&duplicate_sink(), LintCode::DuplicateSink));
}

fn flopless() -> Vec<Diagnostic> {
    let gates = vec![
        raw::gate(GateKind::Input, &[], Some(NetId::new(0))),
        raw::gate(GateKind::Inv, &[NetId::new(0)], Some(NetId::new(1))),
        raw::gate(GateKind::Output, &[NetId::new(1)], None),
    ];
    let nets = vec![
        raw::net(GateId::new(0), &[(GateId::new(1), 0)]),
        raw::net(GateId::new(1), &[(GateId::new(2), 0)]),
    ];
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0008_no_flops() {
    assert!(has(&flopless(), LintCode::NoFlops));
}

fn dead_cone() -> Vec<Diagnostic> {
    // a -> INV -> INV -> (nothing): both inverters are unobservable.
    let gates = vec![
        raw::gate(GateKind::Input, &[], Some(NetId::new(0))),
        raw::gate(GateKind::Inv, &[NetId::new(0)], Some(NetId::new(1))),
        raw::gate(GateKind::Inv, &[NetId::new(1)], Some(NetId::new(2))),
        raw::gate(GateKind::Dff, &[NetId::new(0)], Some(NetId::new(3))),
        raw::gate(GateKind::Output, &[NetId::new(3)], None),
    ];
    let nets = vec![
        raw::net(GateId::new(0), &[(GateId::new(1), 0), (GateId::new(3), 0)]),
        raw::net(GateId::new(1), &[(GateId::new(2), 0)]),
        raw::net(GateId::new(2), &[]),
        raw::net(GateId::new(3), &[(GateId::new(4), 0)]),
    ];
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0009_unobservable_gate() {
    assert!(has(&dead_cone(), LintCode::UnobservableGate));
}

fn inputless() -> Vec<Diagnostic> {
    // A self-clocked DFF loop with an output: structurally sound, but no
    // primary input anywhere.
    let gates = vec![
        raw::gate(GateKind::Dff, &[NetId::new(0)], Some(NetId::new(0))),
        raw::gate(GateKind::Output, &[NetId::new(0)], None),
    ];
    let nets = vec![raw::net(
        GateId::new(0),
        &[(GateId::new(0), 0), (GateId::new(1), 0)],
    )];
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0010_no_primary_inputs() {
    assert!(has(&inputless(), LintCode::NoPrimaryInputs));
}

fn outputless() -> Vec<Diagnostic> {
    let gates = vec![
        raw::gate(GateKind::Input, &[], Some(NetId::new(0))),
        raw::gate(GateKind::Dff, &[NetId::new(0)], Some(NetId::new(1))),
    ];
    let nets = vec![
        raw::net(GateId::new(0), &[(GateId::new(1), 0)]),
        raw::net(GateId::new(1), &[]),
    ];
    netlist::check_parts(&gates, &nets)
}

#[test]
fn l0011_no_primary_outputs() {
    assert!(has(&outputless(), LintCode::NoPrimaryOutputs));
}

// ---------------------------------------------------------------- L01xx --

fn dropped_miv() -> Vec<Diagnostic> {
    let d = aes_design();
    let mut mivs = d.mivs().to_vec();
    mivs.remove(0);
    m3d::check_miv_table(d.netlist(), d.partition(), &mivs)
}

#[test]
fn l0101_missing_miv() {
    assert!(has(&dropped_miv(), LintCode::MissingMiv));
}

fn miv_on_uncut_net() -> Vec<Diagnostic> {
    let d = aes_design();
    let uncut = (0..d.netlist().net_count())
        .map(NetId::new)
        .find(|&n| d.miv_on_net(n).is_none() && !d.netlist().net(n).sinks().is_empty())
        .expect("most nets are uncut");
    let mut mivs = d.mivs().to_vec();
    mivs.push(Miv {
        net: uncut,
        driver_tier: d.tier_of_gate(d.netlist().net(uncut).driver()),
    });
    m3d::check_miv_table(d.netlist(), d.partition(), &mivs)
}

#[test]
fn l0102_spurious_miv() {
    assert!(has(&miv_on_uncut_net(), LintCode::SpuriousMiv));
}

fn miv_on_sinkless_net() -> Vec<Diagnostic> {
    // Build (unchecked) a netlist whose n1 has no sinks, then claim an MIV
    // crosses it: there is no far-tier sink for the MIV to reach.
    let gates = vec![
        raw::gate(GateKind::Input, &[], Some(NetId::new(0))),
        raw::gate(GateKind::Dff, &[NetId::new(0)], Some(NetId::new(1))),
    ];
    let nets = vec![
        raw::net(GateId::new(0), &[(GateId::new(1), 0)]),
        raw::net(GateId::new(1), &[]),
    ];
    let nl = raw::netlist("sinkless", gates, nets);
    let part = Partition::from_tiers(&nl, vec![Tier::Bottom, Tier::Bottom]);
    let mivs = vec![Miv {
        net: NetId::new(1),
        driver_tier: Tier::Bottom,
    }];
    m3d::check_miv_table(&nl, &part, &mivs)
}

#[test]
fn l0103_miv_without_far_sinks() {
    assert!(has(&miv_on_sinkless_net(), LintCode::MivWithoutFarSinks));
}

fn stale_site_table() -> Vec<Diagnostic> {
    let d = aes_design();
    // Three phantom MIV sites appended beyond the real MIV count.
    let sites = SiteTable::from_netlist(d.netlist()).with_mivs(d.miv_count() + 3);
    let doctored = M3dDesign::from_raw_parts(
        d.netlist().clone(),
        d.partition().clone(),
        d.mivs().to_vec(),
        sites,
    );
    m3d::check_site_table(&doctored)
}

#[test]
fn l0104_site_table_mismatch() {
    assert!(has(&stale_site_table(), LintCode::SiteTableMismatch));
}

fn lopsided_partition() -> Vec<Diagnostic> {
    let d = aes_design();
    let nl = d.netlist();
    let everything_bottom = Partition::from_tiers(nl, vec![Tier::Bottom; nl.gate_count()]);
    m3d::check_partition(nl, &everything_bottom)
}

#[test]
fn l0105_tier_imbalance() {
    assert!(has(&lopsided_partition(), LintCode::TierImbalance));
}

fn foreign_partition() -> Vec<Diagnostic> {
    let d = aes_design();
    let other = Benchmark::Tate.generate(&GenParams::small(1));
    m3d::check_partition(&other, d.partition())
}

#[test]
fn l0106_partition_size_mismatch() {
    assert!(has(&foreign_partition(), LintCode::PartitionSizeMismatch));
}

fn hoisted_pseudo_cell() -> Vec<Diagnostic> {
    let d = aes_design();
    let nl = d.netlist();
    let mut tiers = d.partition().tiers().to_vec();
    let pseudo = nl
        .gates()
        .iter()
        .position(|g| g.kind() == GateKind::Input)
        .expect("benchmarks have primary inputs");
    tiers[pseudo] = Tier::Top;
    m3d::check_partition(nl, &Partition::from_tiers(nl, tiers))
}

#[test]
fn l0107_pseudo_cell_tier() {
    assert!(has(&hoisted_pseudo_cell(), LintCode::PseudoCellTier));
}

// ---------------------------------------------------------------- L02xx --

fn scan_netlist() -> &'static Netlist {
    static NL: OnceLock<Netlist> = OnceLock::new();
    NL.get_or_init(|| Benchmark::Netcard.generate(&GenParams::small(1)))
}

fn dropped_flop_scan() -> Vec<Diagnostic> {
    let nl = scan_netlist();
    let n = nl.flops().len();
    let chains = vec![(1..n).map(FlopId::new).collect::<Vec<_>>()];
    dft::check_scan(nl, &ScanChains::from_raw_chains(chains, 20))
}

#[test]
fn l0201_unscanned_flop() {
    assert!(has(&dropped_flop_scan(), LintCode::UnscannedFlop));
}

fn double_stitched_scan() -> Vec<Diagnostic> {
    let nl = scan_netlist();
    let n = nl.flops().len();
    let mut all: Vec<FlopId> = (0..n).map(FlopId::new).collect();
    all.push(FlopId::new(0)); // flop 0 stitched twice
    dft::check_scan(nl, &ScanChains::from_raw_chains(vec![all], 20))
}

#[test]
fn l0202_duplicate_scan_flop() {
    assert!(has(&double_stitched_scan(), LintCode::DuplicateScanFlop));
}

fn phantom_flop_scan() -> Vec<Diagnostic> {
    let nl = scan_netlist();
    let n = nl.flops().len();
    let mut all: Vec<FlopId> = (0..n).map(FlopId::new).collect();
    all.push(FlopId::new(n + 5));
    dft::check_scan(nl, &ScanChains::from_raw_chains(vec![all], 20))
}

#[test]
fn l0203_unknown_scan_flop() {
    assert!(has(&phantom_flop_scan(), LintCode::UnknownScanFlop));
}

fn unbalanced_scan() -> Vec<Diagnostic> {
    let nl = scan_netlist();
    let n = nl.flops().len();
    assert!(n >= 4, "netcard has plenty of flops");
    let chains = vec![
        (0..n - 1).map(FlopId::new).collect::<Vec<_>>(),
        vec![FlopId::new(n - 1)],
    ];
    dft::check_scan(nl, &ScanChains::from_raw_chains(chains, 20))
}

#[test]
fn l0204_chain_imbalance() {
    assert!(has(&unbalanced_scan(), LintCode::ChainImbalance));
}

fn weak_tap() -> Vec<Diagnostic> {
    // The observation flop taps net `a` directly at the primary input:
    // already controllable, so the point buys no observability.
    let mut b = NetlistBuilder::new("weak-tpi");
    let a = b.add_input("a");
    let x = b.add_gate(GateKind::Inv, &[a]);
    let q = b.add_dff(x);
    b.add_output("q", q);
    let obs = b.add_dff(a);
    b.add_output("obs", obs);
    dft::check_tpi(&b.finish().unwrap())
}

#[test]
fn l0205_weak_observation_point() {
    assert!(has(&weak_tap(), LintCode::WeakObservationPoint));
}

// ---------------------------------------------------------------- L03xx --

fn clean_data(n: usize) -> GraphData {
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    GraphData::new(
        GcnGraph::from_edges(n, &edges),
        Matrix::zeros(n, FEATURE_DIM),
    )
}

fn nan_poison() -> Vec<Diagnostic> {
    let mut d = clean_data(4);
    d.features.row_mut(2)[7] = f32::NAN;
    tensor::check_graph_data(&d)
}

#[test]
fn l0301_non_finite_feature() {
    assert!(has(&nan_poison(), LintCode::NonFiniteFeature));
}

fn truncated_features() -> Vec<Diagnostic> {
    // Feature rows for only half the nodes (bypassing `GraphData::new`'s
    // assert, exactly what a buggy transform would produce).
    let d = GraphData {
        graph: GcnGraph::from_edges(4, &[(0, 1), (2, 3)]),
        features: Matrix::zeros(2, FEATURE_DIM),
    };
    tensor::check_graph_data(&d)
}

#[test]
fn l0302_feature_shape() {
    assert!(has(&truncated_features(), LintCode::FeatureShape));
}

fn out_of_range_feature() -> Vec<Diagnostic> {
    let mut d = clean_data(3);
    d.features.row_mut(0)[3] = 7.5; // tier column lives in [0, 1]
    tensor::check_graph_data(&d)
}

#[test]
fn l0303_feature_range() {
    assert!(has(&out_of_range_feature(), LintCode::FeatureRange));
}

fn shuffled_sites() -> Vec<Diagnostic> {
    let (design, mut sample) = sample_with_subgraph();
    let sg = sample.subgraph.as_mut().unwrap();
    assert!(sg.sites.len() >= 2, "back-traced cones have many sites");
    sg.sites.swap(0, 1);
    tensor::check_subgraph(design, sg)
}

#[test]
fn l0304_unsorted_sites() {
    assert!(has(&shuffled_sites(), LintCode::UnsortedSites));
}

fn phantom_miv_node() -> Vec<Diagnostic> {
    let (design, mut sample) = sample_with_subgraph();
    let sg = sample.subgraph.as_mut().unwrap();
    let pin_node = sg
        .sites
        .iter()
        .position(|&s| !matches!(design.sites().pos(s), SitePos::Miv(_)))
        .expect("cones contain gate-pin sites");
    sg.miv_nodes.push((pin_node, u32::MAX));
    tensor::check_subgraph(design, sg)
}

#[test]
fn l0305_bad_miv_node() {
    assert!(has(&phantom_miv_node(), LintCode::BadMivNode));
}

fn corrupted_truth() -> Vec<Diagnostic> {
    let (design, mut sample) = sample_with_subgraph();
    sample.miv_truth.push(u32::MAX); // an MIV nobody injected
    tensor::check_sample(design, &sample)
}

#[test]
fn l0306_label_mismatch() {
    assert!(has(&corrupted_truth(), LintCode::LabelMismatch));
}

// The dataflow scenarios are not mutations: the `L1xxx` findings describe
// legitimate properties a well-formed design carries (reconvergent
// constants, untestable input cones, slack surface), which is why the
// pass is opt-in. The archetype covers the organic findings; a
// handcrafted netlist pins down the capture-blocked class.

fn archetype_dataflow() -> Vec<Diagnostic> {
    let (env, _) = env_with_samples();
    dataflow::check_design(&env.design)
}

#[test]
fn l1001_constant_net() {
    assert!(has(&archetype_dataflow(), LintCode::ConstantNet));
}

#[test]
fn l1002_redundant_logic() {
    assert!(has(&archetype_dataflow(), LintCode::RedundantLogic));
}

#[test]
fn l1101_untestable_no_launch() {
    assert!(has(&archetype_dataflow(), LintCode::UntestableNoLaunch));
}

#[test]
fn l1103_untestable_constant() {
    assert!(has(&archetype_dataflow(), LintCode::UntestableConstant));
}

#[test]
fn l1201_small_delay_escapes() {
    assert!(has(&archetype_dataflow(), LintCode::SmallDelayEscapes));
}

/// A cone that ends at an unstrobed primary output: `q -> INV -> y`
/// never reaches a scan capture point, so its sites are NoCapture.
fn capture_blocked() -> Vec<Diagnostic> {
    let mut b = NetlistBuilder::new("no-capture");
    let a = b.add_input("a");
    let q = b.add_dff(a);
    let y = b.add_gate(GateKind::Inv, &[q]);
    b.add_output("y", y);
    let nl = b.finish().unwrap();
    let part = PartitionAlgo::MinCut.partition(&nl, 1);
    let design = M3dDesign::new(nl, part);
    dataflow::check_design(&design)
}

#[test]
fn l1102_untestable_no_capture() {
    assert!(has(&capture_blocked(), LintCode::UntestableNoCapture));
}

// ---------------------------------------------------------- completeness --

/// Every code in the catalogue is fired by at least one scenario above;
/// adding a `LintCode` without a reaching mutation fails here.
#[test]
fn every_code_is_reachable() {
    let all: Vec<Vec<Diagnostic>> = vec![
        combinational_loop(),
        cut_driver(),
        unknown_net_ref(),
        bad_arity(),
        missing_output_pin(),
        crossref_mismatch(),
        duplicate_sink(),
        flopless(),
        dead_cone(),
        inputless(),
        outputless(),
        dropped_miv(),
        miv_on_uncut_net(),
        miv_on_sinkless_net(),
        stale_site_table(),
        lopsided_partition(),
        foreign_partition(),
        hoisted_pseudo_cell(),
        dropped_flop_scan(),
        double_stitched_scan(),
        phantom_flop_scan(),
        unbalanced_scan(),
        weak_tap(),
        nan_poison(),
        truncated_features(),
        out_of_range_feature(),
        shuffled_sites(),
        phantom_miv_node(),
        corrupted_truth(),
        archetype_dataflow(),
        capture_blocked(),
    ];
    let missing: Vec<&str> = LintCode::ALL
        .iter()
        .filter(|&&code| !all.iter().any(|diags| has(diags, code)))
        .map(|c| c.code())
        .collect();
    assert!(
        missing.is_empty(),
        "codes with no reaching mutation: {missing:?}"
    );
}
