//! Fuzzing the failure-log parser: `read_failure_log` must never panic,
//! whatever bytes the "tester" hands it, and every rejection must name the
//! 1-based line and column of the offending token (chaos fault class 4 of
//! `m3d-resilient`'s matrix — the parser-side proof).

use proptest::prelude::*;

use m3d_dft::ObsPoint;
use m3d_netlist::FlopId;
use m3d_resilient::chaos;
use m3d_tdf::{read_failure_log, write_failure_log, FailEntry, FailureLog};

/// Checks the error contract: positions are 1-based and surface in the
/// rendered message.
fn check_error(e: &m3d_tdf::ParseLogError) {
    assert!(e.line >= 1, "line must be 1-based, got {}", e.line);
    assert!(e.col >= 1, "col must be 1-based, got {}", e.col);
    let shown = e.to_string();
    assert!(
        shown.contains(&format!("line {}, col {}", e.line, e.col)),
        "message must carry the position: {shown}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw fuzz: arbitrary (lossily decoded) bytes parse or fail typed.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = read_failure_log(&text) {
            check_error(&e);
        }
    }

    /// Structured fuzz: token soup drawn from the format's own vocabulary,
    /// so the deeper match arms and numeric parses get exercised too.
    #[test]
    fn token_soup_never_panics(words in prop::collection::vec((0u8..10, any::<u32>()), 0..48)) {
        let mut text = String::new();
        for (kind, val) in words {
            match kind {
                0 => text.push_str("fail"),
                1 => text.push_str("pattern"),
                2 => text.push_str("flop"),
                3 => text.push_str("channel"),
                4 => text.push_str("cycle"),
                5 => text.push_str(&val.to_string()),
                6 => text.push('#'),
                7 => text.push_str("-1"),
                8 => text.push_str("99999999999999999999"),
                _ => text.push_str("\u{fffd}x\u{1}"),
            }
            text.push(if val % 5 == 0 { '\n' } else { ' ' });
        }
        if let Err(e) = read_failure_log(&text) {
            check_error(&e);
            prop_assert!(e.line <= text.lines().count().max(1));
        }
    }

    /// Valid logs round-trip losslessly through write → read.
    #[test]
    fn valid_logs_round_trip(
        entries in prop::collection::vec((any::<bool>(), 0u32..512, 0u32..256, 0u32..64), 0..24),
    ) {
        let log: FailureLog = entries
            .into_iter()
            .map(|(bypass, pattern, a, b)| FailEntry {
                pattern,
                obs: if bypass {
                    ObsPoint::Flop(FlopId::new(a as usize))
                } else {
                    ObsPoint::ChannelCycle {
                        channel: a as u16,
                        cycle: b as u16,
                    }
                },
            })
            .collect();
        let text = write_failure_log(&log);
        prop_assert_eq!(read_failure_log(&text).expect("wrote it ourselves"), log);
    }

    /// Deterministically garbled valid logs (the `m3d-resilient` chaos
    /// injector) either still parse or fail typed with a position — the
    /// cross-crate half of chaos fault class 4.
    #[test]
    fn garbled_logs_fail_typed_not_panicking(seed in 0u64..4096) {
        let log: FailureLog = (0..6)
            .map(|i| FailEntry {
                pattern: i * 3,
                obs: ObsPoint::Flop(FlopId::new(i as usize)),
            })
            .collect();
        let garbled = chaos::garble_text(&write_failure_log(&log), seed);
        if let Err(e) = read_failure_log(&garbled) {
            check_error(&e);
        }
    }
}
