//! Two-frame (launch-on-capture) parallel-pattern logic simulation.
//!
//! Frame 1 evaluates the combinational logic from the scanned-in launch
//! state and the primary inputs; the launch clock captures every flop's D
//! value; frame 2 re-evaluates from the captured state; the capture clock
//! strobes the final D values, which are shifted out as the test response.
//! A node *transitions* when its frame-1 and frame-2 values differ — the
//! condition that can activate a transition-delay fault.

use m3d_netlist::{GateKind, Netlist};

use crate::pattern::PatternBlock;

/// Fault-free simulation results for one pattern block.
#[derive(Clone, Debug)]
pub struct BlockSim {
    /// Frame-1 (launch) value of every net.
    pub f1: Vec<u64>,
    /// Frame-2 (capture) value of every net.
    pub f2: Vec<u64>,
    /// Launch-captured D value per flop (becomes the frame-2 state).
    pub capture1: Vec<u64>,
    /// Final captured D value per flop (the scan-out response).
    pub capture2: Vec<u64>,
    /// Valid-lane mask of the block.
    pub lanes: u64,
}

impl BlockSim {
    /// Transition mask of a net: lanes whose frame-1 and frame-2 values
    /// differ.
    #[inline]
    pub fn transition(&self, net: m3d_netlist::NetId) -> u64 {
        (self.f1[net.index()] ^ self.f2[net.index()]) & self.lanes
    }
}

/// A reusable two-frame simulator for one netlist.
///
/// Construction *compiles* the levelized netlist into flat arrays — gate
/// kinds, CSR input-net indices and output-net indices in topological
/// (level) order — so a frame evaluation is one tight sweep over
/// contiguous storage with arity-specialized gate evaluation, instead of
/// re-walking the gate objects once per frame. At paper-scale gate counts
/// (hundreds of thousands of gates × thousands of 64-pattern blocks) this
/// sweep is the good-machine hot loop of ATPG and fault simulation.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::{Benchmark, GenParams};
/// use m3d_tdf::{PatternSet, Simulator};
///
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let sim = Simulator::new(&nl);
/// let pats = PatternSet::random(&nl, 64, 3);
/// let block = sim.run_block(&pats.blocks()[0]);
/// assert_eq!(block.capture2.len(), nl.flops().len());
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// Gate kinds in topological order.
    kinds: Vec<GateKind>,
    /// CSR offsets into `in_nets`, one entry per topo gate plus a tail.
    in_off: Vec<u32>,
    /// Flat input-net indices of the topo-ordered gates.
    in_nets: Vec<u32>,
    /// Output-net index per topo gate.
    out_nets: Vec<u32>,
    /// Output-net index per primary input, in `Netlist::inputs` order.
    pi_nets: Vec<u32>,
    /// Output-net (Q) index per flop, in `Netlist::flops` order.
    flop_out_nets: Vec<u32>,
    /// D-input-net index per flop, in `Netlist::flops` order.
    flop_d_nets: Vec<u32>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over `netlist`, compiling the levelized
    /// flat-array form.
    pub fn new(netlist: &'a Netlist) -> Self {
        let order = netlist.topo_order();
        let mut kinds = Vec::with_capacity(order.len());
        let mut in_off = Vec::with_capacity(order.len() + 1);
        let mut in_nets = Vec::new();
        let mut out_nets = Vec::with_capacity(order.len());
        in_off.push(0);
        for &g in order {
            let gate = netlist.gate(g);
            kinds.push(gate.kind());
            in_nets.extend(gate.inputs().iter().map(|n| n.index() as u32));
            in_off.push(in_nets.len() as u32);
            out_nets.push(
                gate.output()
                    .expect("combinational gates drive nets")
                    .index() as u32,
            );
        }
        let pi_nets = netlist
            .inputs()
            .iter()
            .map(|&g| netlist.gate(g).output().expect("inputs drive nets").index() as u32)
            .collect();
        let flop_out_nets = netlist
            .flops()
            .iter()
            .map(|&g| netlist.gate(g).output().expect("flops drive nets").index() as u32)
            .collect();
        let flop_d_nets = netlist
            .flops()
            .iter()
            .map(|&g| netlist.gate(g).inputs()[0].index() as u32)
            .collect();
        Simulator {
            netlist,
            kinds,
            in_off,
            in_nets,
            out_nets,
            pi_nets,
            flop_out_nets,
            flop_d_nets,
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Evaluates one frame over the compiled arrays: net values from PI
    /// words and the flop state. Returns `(net values, D capture per
    /// flop)`.
    fn eval_frame(&self, pi: &[u64], state: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let mut nets = vec![0u64; self.netlist.net_count()];
        for (&n, &w) in self.pi_nets.iter().zip(pi) {
            nets[n as usize] = w;
        }
        for (&n, &w) in self.flop_out_nets.iter().zip(state) {
            nets[n as usize] = w;
        }
        for (gi, &kind) in self.kinds.iter().enumerate() {
            let s = self.in_off[gi] as usize;
            let e = self.in_off[gi + 1] as usize;
            let ins = &self.in_nets[s..e];
            // Arity-specialized dispatch: the 1- and 2-input cases cover
            // most of a synthesized netlist and skip the word-gather loop.
            let v = match *ins {
                [a] => kind.eval(&[nets[a as usize]]),
                [a, b] => kind.eval(&[nets[a as usize], nets[b as usize]]),
                [a, b, c] => kind.eval(&[nets[a as usize], nets[b as usize], nets[c as usize]]),
                _ => {
                    let mut words = [0u64; 4];
                    for (w, &n) in words.iter_mut().zip(ins) {
                        *w = nets[n as usize];
                    }
                    kind.eval(&words[..ins.len()])
                }
            };
            nets[self.out_nets[gi] as usize] = v;
        }
        let capture: Vec<u64> = self.flop_d_nets.iter().map(|&n| nets[n as usize]).collect();
        (nets, capture)
    }

    /// Runs both frames of the LOC test for one pattern block.
    pub fn run_block(&self, block: &PatternBlock) -> BlockSim {
        debug_assert_eq!(block.pi.len(), self.netlist.inputs().len());
        debug_assert_eq!(block.scan.len(), self.netlist.flops().len());
        let lanes = block.lane_mask();
        let (f1, capture1) = self.eval_frame(&block.pi, &block.scan);
        let (f2, capture2) = self.eval_frame(&block.pi, &capture1);
        BlockSim {
            f1,
            f2,
            capture1,
            capture2,
            lanes,
        }
    }

    /// Runs [`Simulator::run_block`] over every block on the `m3d-par`
    /// pool. Blocks are independent and reassembled in block order, so the
    /// result is identical to mapping `run_block` serially, at any thread
    /// count.
    pub fn run_blocks(&self, blocks: &[PatternBlock]) -> Vec<BlockSim> {
        m3d_par::par_map(blocks, |b| self.run_block(b))
    }
}

/// Sanity helper: evaluates a single frame for one scalar pattern (used by
/// tests to cross-check the parallel simulator lane by lane).
pub fn eval_single_frame(netlist: &Netlist, pi: &[bool], state: &[bool]) -> Vec<bool> {
    let pi_words: Vec<u64> = pi.iter().map(|&b| u64::from(b)).collect();
    let st_words: Vec<u64> = state.iter().map(|&b| u64::from(b)).collect();
    let sim = Simulator::new(netlist);
    let (nets, _) = sim.eval_frame(&pi_words, &st_words);
    nets.into_iter().map(|w| w & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSet;
    use m3d_netlist::generate::{Benchmark, GenParams};
    use m3d_netlist::{GateKind, NetlistBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_sim_matches_scalar_sim_lane_by_lane() {
        let nl = Benchmark::Tate.generate(&GenParams::small(1));
        let pats = PatternSet::random(&nl, 64, 11);
        let sim = Simulator::new(&nl);
        let blk = sim.run_block(&pats.blocks()[0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let lane = rng.gen_range(0..64);
            let pi: Vec<bool> = pats.blocks()[0]
                .pi
                .iter()
                .map(|&w| (w >> lane) & 1 == 1)
                .collect();
            let st: Vec<bool> = pats.blocks()[0]
                .scan
                .iter()
                .map(|&w| (w >> lane) & 1 == 1)
                .collect();
            let nets = eval_single_frame(&nl, &pi, &st);
            for (i, &v) in nets.iter().enumerate() {
                assert_eq!((blk.f1[i] >> lane) & 1 == 1, v, "net {i}, lane {lane}");
            }
        }
    }

    #[test]
    fn frame2_uses_launch_captured_state() {
        // A single inverter loop through a flop: Q -> INV -> D.
        let mut b = NetlistBuilder::new("toggler");
        let en = b.add_input("en");
        let (d_net, inv) = b.add_gate_deferred(GateKind::Xor, 2);
        let q = b.add_dff(d_net);
        b.connect_deferred(inv, &[q, en]);
        b.add_output("q", q);
        let nl = b.finish().unwrap();

        // en=1, scan state 0: frame1 D = 0^1 = 1; frame2 state=1, D = 1^1 = 0.
        let block = PatternBlock {
            pi: vec![1],
            scan: vec![0],
            count: 1,
        };
        let sim = Simulator::new(&nl);
        let s = sim.run_block(&block);
        assert_eq!(s.capture1[0] & 1, 1);
        assert_eq!(s.capture2[0] & 1, 0);
        // The D net transitions between frames.
        let d = nl.gate(nl.flops()[0]).inputs()[0];
        assert_eq!(s.transition(d) & 1, 1);
    }

    #[test]
    fn run_blocks_matches_serial_at_any_thread_count() {
        let nl = Benchmark::Netcard.generate(&GenParams::small(2));
        let pats = PatternSet::random(&nl, 300, 7);
        let sim = Simulator::new(&nl);
        let serial: Vec<BlockSim> = pats.blocks().iter().map(|b| sim.run_block(b)).collect();
        for threads in [1, 4] {
            let par = m3d_par::with_threads(threads, || sim.run_blocks(pats.blocks()));
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.f1, b.f1, "threads {threads}");
                assert_eq!(a.f2, b.f2, "threads {threads}");
                assert_eq!(a.capture1, b.capture1, "threads {threads}");
                assert_eq!(a.capture2, b.capture2, "threads {threads}");
                assert_eq!(a.lanes, b.lanes, "threads {threads}");
            }
        }
    }

    #[test]
    fn lanes_mask_partial_blocks() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let pats = PatternSet::random(&nl, 5, 2);
        let sim = Simulator::new(&nl);
        let blk = sim.run_block(&pats.blocks()[0]);
        assert_eq!(blk.lanes, (1 << 5) - 1);
    }

    #[test]
    fn identical_frames_mean_no_transitions() {
        // If the scan state already equals the functional next state, nets
        // that depend only on PIs must not transition.
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let pats = PatternSet::random(&nl, 64, 4);
        let sim = Simulator::new(&nl);
        let blk = sim.run_block(&pats.blocks()[0]);
        // PI-driven nets never transition (PIs are held across frames).
        for &g in nl.inputs() {
            let out = nl.gate(g).output().unwrap();
            assert_eq!(blk.transition(out), 0);
        }
    }
}
