//! Tester failure logs.
//!
//! A failure log is what the tester emits for one failing chip: the list of
//! `(pattern, observation point)` pairs that mis-compared. In bypass mode
//! observation points are scan cells; under response compaction they are
//! `(channel, cycle)` pairs. The log — together with the netlist — is the
//! *only* input the paper's framework needs.

use m3d_dft::{ObsMode, ObsPoint, ScanChains};

use crate::fsim::Detection;
use crate::pattern::PatternId;

/// One mis-comparing tester observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FailEntry {
    /// The failing pattern.
    pub pattern: PatternId,
    /// Where the failure was observed.
    pub obs: ObsPoint,
}

/// A failure log: all erroneous output responses of one failing chip.
///
/// # Examples
///
/// ```
/// use m3d_dft::{ObsMode, ObsPoint, ScanChains, ScanConfig};
/// use m3d_netlist::generate::{Benchmark, GenParams};
/// use m3d_netlist::FlopId;
/// use m3d_tdf::{Detection, FailureLog};
///
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let scan = ScanChains::new(&nl, ScanConfig::for_flop_count(nl.flops().len()));
/// let dets = vec![Detection { pattern: 4, flop: FlopId::new(0) }];
/// let log = FailureLog::from_detections(&dets, &scan, ObsMode::Bypass);
/// assert_eq!(log.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureLog {
    entries: Vec<FailEntry>,
}

impl FailureLog {
    /// Builds a log from raw failing captures via the scan architecture.
    ///
    /// Detections are grouped per pattern and passed through the selected
    /// observation mode (compaction can alias pairs of failures away).
    pub fn from_detections(detections: &[Detection], scan: &ScanChains, mode: ObsMode) -> Self {
        let mut by_pattern: std::collections::BTreeMap<PatternId, Vec<m3d_netlist::FlopId>> =
            std::collections::BTreeMap::new();
        for d in detections {
            by_pattern.entry(d.pattern).or_default().push(d.flop);
        }
        let mut entries = Vec::new();
        for (pattern, flops) in by_pattern {
            for obs in scan.observe(&flops, mode) {
                entries.push(FailEntry { pattern, obs });
            }
        }
        FailureLog { entries }
    }

    /// The log entries, sorted by `(pattern, observation)`.
    #[inline]
    pub fn entries(&self) -> &[FailEntry] {
        &self.entries
    }

    /// Number of erroneous responses.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the chip passed every pattern.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct failing patterns, ascending.
    pub fn failing_patterns(&self) -> Vec<PatternId> {
        let mut v: Vec<PatternId> = self.entries.iter().map(|e| e.pattern).collect();
        v.dedup();
        v
    }
}

impl FromIterator<FailEntry> for FailureLog {
    fn from_iter<I: IntoIterator<Item = FailEntry>>(iter: I) -> Self {
        let mut entries: Vec<FailEntry> = iter.into_iter().collect();
        entries.sort_unstable();
        entries.dedup();
        FailureLog { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_dft::ScanConfig;
    use m3d_netlist::generate::{Benchmark, GenParams};
    use m3d_netlist::FlopId;

    fn scan() -> ScanChains {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        ScanChains::new(&nl, ScanConfig::for_flop_count(nl.flops().len()))
    }

    #[test]
    fn bypass_log_preserves_every_detection() {
        let s = scan();
        let dets = vec![
            Detection {
                pattern: 2,
                flop: FlopId::new(1),
            },
            Detection {
                pattern: 2,
                flop: FlopId::new(4),
            },
            Detection {
                pattern: 9,
                flop: FlopId::new(1),
            },
        ];
        let log = FailureLog::from_detections(&dets, &s, ObsMode::Bypass);
        assert_eq!(log.len(), 3);
        assert_eq!(log.failing_patterns(), vec![2, 9]);
    }

    #[test]
    fn compacted_log_can_alias_failures_away() {
        let s = scan();
        // Find two cells sharing (channel, cycle).
        let mut pair = None;
        'outer: for c1 in 0..s.chain_count() {
            for c2 in (c1 + 1)..s.chain_count() {
                if s.channel_of_chain(c1 as u16) == s.channel_of_chain(c2 as u16)
                    && !s.chains()[c1].is_empty()
                    && !s.chains()[c2].is_empty()
                {
                    pair = Some((s.chains()[c1][0], s.chains()[c2][0]));
                    break 'outer;
                }
            }
        }
        let (f1, f2) = pair.expect("compacted channels share chains");
        let dets = vec![
            Detection {
                pattern: 0,
                flop: f1,
            },
            Detection {
                pattern: 0,
                flop: f2,
            },
        ];
        let log = FailureLog::from_detections(&dets, &s, ObsMode::Compacted);
        assert!(log.is_empty(), "even parity must alias to a pass");
    }

    #[test]
    fn from_iterator_sorts_and_dedups() {
        let e1 = FailEntry {
            pattern: 5,
            obs: ObsPoint::Flop(FlopId::new(0)),
        };
        let e0 = FailEntry {
            pattern: 1,
            obs: ObsPoint::Flop(FlopId::new(2)),
        };
        let log: FailureLog = vec![e1, e0, e1].into_iter().collect();
        assert_eq!(log.entries(), &[e0, e1]);
    }
}
