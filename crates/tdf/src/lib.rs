//! Transition-delay-fault testing substrate: two-frame logic simulation,
//! the TDF fault model (including MIV faults), event-driven fault
//! simulation, random-fill ATPG with fault dropping, and tester failure
//! logs.
//!
//! Together with `m3d-dft` this crate replaces the commercial ATPG/tester
//! toolchain of the paper's data-generation flow (Fig. 4): a design goes in,
//! TDF patterns and per-injection failure logs come out.
//!
//! # Examples
//!
//! ```
//! use m3d_dft::{ObsMode, ScanChains, ScanConfig};
//! use m3d_netlist::generate::Benchmark;
//! use m3d_part::DesignConfig;
//! use m3d_tdf::{
//!     full_fault_list, generate_patterns, AtpgConfig, FailureLog, FaultSim,
//! };
//!
//! let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
//! let test_set = generate_patterns(&design, &AtpgConfig::new(1, 256));
//! let scan = ScanChains::new(
//!     design.netlist(),
//!     ScanConfig::for_flop_count(design.netlist().flops().len()),
//! );
//!
//! // Inject one fault and read the tester log.
//! let fault = full_fault_list(&design)[10];
//! let sim = FaultSim::new(&design, &test_set.patterns);
//! let dets = sim.detections(&mut sim.detector(), &[fault]);
//! let log = FailureLog::from_detections(&dets, &scan, ObsMode::Bypass);
//! println!("{} erroneous responses", log.len());
//! ```

#![warn(missing_docs)]

mod atpg;
mod fault;
mod fsim;
mod log;
mod log_io;
mod pattern;
mod sim;
mod timing;

pub use atpg::{
    generate_patterns, generate_patterns_pruned, undetected_faults, AtpgConfig, TestSet,
};
pub use fault::{
    full_fault_list, injection_scope, site_net, testable_sites, Fault, InjectionScope, Polarity,
};
pub use fsim::{BlockDetector, Detection, FaultSim};
pub use log::{FailEntry, FailureLog};
pub use log_io::{read_failure_log, write_failure_log, ParseLogError};
pub use pattern::{PatternBlock, PatternId, PatternSet};
pub use sim::{eval_single_frame, BlockSim, Simulator};
pub use timing::{StaticTiming, TimingModel};
