//! The transition-delay fault model.

use m3d_netlist::{NetId, SiteId, SitePos};
use m3d_part::M3dDesign;

/// Transition polarity of a delay fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// Slow-to-rise: a 0→1 transition arrives late.
    SlowToRise,
    /// Slow-to-fall: a 1→0 transition arrives late.
    SlowToFall,
}

impl Polarity {
    /// Both polarities.
    pub const ALL: [Polarity; 2] = [Polarity::SlowToRise, Polarity::SlowToFall];

    /// Lanes (patterns) in which a site with launch value `f1` and capture
    /// value `f2` has the sensitizing transition for this polarity.
    #[inline]
    pub fn activation(self, f1: u64, f2: u64) -> u64 {
        match self {
            Polarity::SlowToRise => !f1 & f2,
            Polarity::SlowToFall => f1 & !f2,
        }
    }
}

/// A single transition-delay fault at a site.
///
/// # Examples
///
/// ```
/// use m3d_netlist::SiteId;
/// use m3d_tdf::{Fault, Polarity};
///
/// let f = Fault::new(SiteId::new(3), Polarity::SlowToRise);
/// assert_eq!(f.site, SiteId::new(3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The fault site (gate pin or MIV).
    pub site: SiteId,
    /// The slow transition direction.
    pub polarity: Polarity,
}

impl Fault {
    /// Creates a fault.
    pub fn new(site: SiteId, polarity: Polarity) -> Self {
        Fault { site, polarity }
    }
}

/// Where a fault's delayed value is seen during frame-2 propagation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InjectionScope {
    /// The whole net (output-pin faults delay the stem).
    Net(NetId),
    /// A single fan-out branch (input-pin faults delay one pin).
    Branch(m3d_netlist::GateId, u8),
    /// The far-tier branches of a cut net (MIV faults delay the crossing).
    MivBranches(Vec<(m3d_netlist::GateId, u8)>),
}

/// The net whose fault-free value determines a site's transitions.
pub fn site_net(design: &M3dDesign, site: SiteId) -> NetId {
    match design.sites().pos(site) {
        SitePos::Output(g) => design
            .netlist()
            .gate(g)
            .output()
            .expect("output sites exist only on driving gates"),
        SitePos::Input(g, pin) => design.netlist().gate(g).inputs()[pin as usize],
        SitePos::Miv(m) => design.mivs()[m as usize].net,
    }
}

/// The injection scope of a fault at a site.
pub fn injection_scope(design: &M3dDesign, site: SiteId) -> InjectionScope {
    match design.sites().pos(site) {
        SitePos::Output(g) => InjectionScope::Net(
            design
                .netlist()
                .gate(g)
                .output()
                .expect("output sites exist only on driving gates"),
        ),
        SitePos::Input(g, pin) => InjectionScope::Branch(g, pin),
        SitePos::Miv(m) => InjectionScope::MivBranches(design.far_sinks(m)),
    }
}

/// The complete single-fault universe of a design: both polarities at every
/// pin site and every MIV site.
pub fn full_fault_list(design: &M3dDesign) -> Vec<Fault> {
    let mut faults = Vec::with_capacity(design.sites().len() * 2);
    for (site, _) in design.sites().iter() {
        for pol in Polarity::ALL {
            faults.push(Fault::new(site, pol));
        }
    }
    faults
}

/// Structural testability of every site under held-PI launch-on-capture.
///
/// A TDF is testable only if its site can *transition* (its cone contains a
/// flop output — primary inputs are held across the launch/capture frames)
/// and its effect can *reach a scan capture point* (a flop D pin; primary
/// outputs are not strobed at speed). Faults failing either condition are
/// the ATPG-untestable class a commercial tool excludes from test coverage.
pub fn testable_sites(design: &M3dDesign) -> Vec<bool> {
    let nl = design.netlist();

    // Nets whose value can differ between frames: driven (transitively)
    // by at least one flop Q.
    let mut net_seq = vec![false; nl.net_count()];
    for &f in nl.flops() {
        let out = nl.gate(f).output().expect("flops drive nets");
        net_seq[out.index()] = true;
    }
    for &g in nl.topo_order() {
        let gate = nl.gate(g);
        if gate.inputs().iter().any(|&n| net_seq[n.index()]) {
            let out = gate.output().expect("combinational gates drive nets");
            net_seq[out.index()] = true;
        }
    }

    // Gates from which a fault effect reaches some flop D pin.
    let mut reaches = vec![false; nl.gate_count()];
    for &f in nl.flops() {
        reaches[f.index()] = true;
    }
    for &g in nl.topo_order().iter().rev() {
        if nl.fanout_gates(g).any(|s| reaches[s.index()]) {
            reaches[g.index()] = true;
        }
    }

    design
        .sites()
        .iter()
        .map(|(site, pos)| {
            let net = site_net(design, site);
            if !net_seq[net.index()] {
                return false;
            }
            match pos {
                SitePos::Output(g) => nl
                    .net(nl.gate(g).output().expect("output site"))
                    .sinks()
                    .iter()
                    .any(|&(s, _)| reaches[s.index()]),
                SitePos::Input(g, _) => reaches[g.index()],
                SitePos::Miv(m) => design.far_sinks(m).iter().any(|&(s, _)| reaches[s.index()]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    #[test]
    fn activation_masks_are_disjoint_and_cover_transitions() {
        let f1 = 0b0011u64;
        let f2 = 0b0101u64;
        let str_mask = Polarity::SlowToRise.activation(f1, f2);
        let stf_mask = Polarity::SlowToFall.activation(f1, f2);
        assert_eq!(str_mask & stf_mask, 0);
        assert_eq!(str_mask | stf_mask, f1 ^ f2);
        assert_eq!(str_mask, 0b0100);
        assert_eq!(stf_mask, 0b0010);
    }

    #[test]
    fn fault_list_covers_every_site_twice() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let faults = full_fault_list(&d);
        assert_eq!(faults.len(), d.sites().len() * 2);
    }

    #[test]
    fn miv_faults_scope_to_far_branches() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        assert!(d.miv_count() > 0);
        let site = d.miv_site(0);
        match injection_scope(&d, site) {
            InjectionScope::MivBranches(branches) => {
                assert!(!branches.is_empty());
                for (g, _) in branches {
                    assert_ne!(
                        d.tier_of_gate(g),
                        d.mivs()[0].driver_tier,
                        "MIV delays only far-tier branches"
                    );
                }
            }
            other => panic!("expected MIV scope, got {other:?}"),
        }
        assert_eq!(site_net(&d, site), d.mivs()[0].net);
    }
}
