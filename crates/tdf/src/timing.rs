//! Static timing and small-delay-defect analysis.
//!
//! The TDF model used for test generation and diagnosis is a *gross-delay*
//! model: an activated fault always misses the capture edge. Real M3D
//! defects are often *small* delays — an MIV void or a slow top-tier
//! transistor adds a finite `δ` — and such a defect is only detected on
//! paths whose slack is smaller than `δ`. This module adds the static
//! timing view needed to reason about that:
//!
//! * per-gate nominal delays plus the M3D technology penalties the paper
//!   describes (top-tier device degradation from low-temperature
//!   processing, bottom-tier tungsten-interconnect RC, MIV crossing
//!   delay),
//! * longest launch-to-capture path through every fault site,
//! * the minimum detectable delay size per site at a given clock period.
//!
//! It also quantifies why delay diagnosis cannot trust `tpsf`
//! mispredictions: a gross-delay simulation predicts failures on *every*
//! sensitized path, while a small defect fails only the long ones.

use m3d_netlist::{GateKind, NetId, SiteId, SitePos};
use m3d_part::{M3dDesign, Tier};

use crate::fault::site_net;

/// Nominal gate/interconnect delays with M3D technology penalties.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingModel {
    /// Multiplier on gate delay in the top tier (low-temperature device
    /// degradation; the paper cites up to 20%).
    pub top_tier_device_penalty: f32,
    /// Multiplier on interconnect delay in the bottom tier (tungsten BEOL;
    /// the paper cites ~6× copper resistivity, partially amortized).
    pub bottom_tier_wire_penalty: f32,
    /// Extra delay for crossing an MIV (arbitrary time units).
    pub miv_delay: f32,
    /// Per-net baseline interconnect delay.
    pub wire_delay: f32,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            top_tier_device_penalty: 1.2,
            bottom_tier_wire_penalty: 1.6,
            miv_delay: 0.4,
            wire_delay: 0.3,
        }
    }
}

impl TimingModel {
    /// Nominal propagation delay of a gate kind (time units).
    pub fn gate_delay(&self, kind: GateKind) -> f32 {
        match kind {
            GateKind::Input | GateKind::Output | GateKind::Dff => 0.0,
            GateKind::Buf => 0.6,
            GateKind::Inv => 0.5,
            GateKind::And | GateKind::Or => 1.0,
            GateKind::Nand | GateKind::Nor => 0.8,
            GateKind::Xor | GateKind::Xnor => 1.4,
            GateKind::Mux2 => 1.2,
            GateKind::Aoi21 | GateKind::Oai21 => 1.1,
        }
    }

    /// Delay of a gate placed on `tier`.
    pub fn placed_gate_delay(&self, kind: GateKind, tier: Tier) -> f32 {
        let base = self.gate_delay(kind);
        match tier {
            Tier::Top => base * self.top_tier_device_penalty,
            Tier::Bottom => base,
        }
    }

    /// Delay of the net driven by a gate on `tier` (before any MIV).
    pub fn placed_wire_delay(&self, tier: Tier) -> f32 {
        match tier {
            Tier::Top => self.wire_delay,
            Tier::Bottom => self.wire_delay * self.bottom_tier_wire_penalty,
        }
    }
}

/// Static timing of a partitioned design under a [`TimingModel`].
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::Benchmark;
/// use m3d_part::DesignConfig;
/// use m3d_tdf::{StaticTiming, TimingModel};
///
/// let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
/// let timing = StaticTiming::compute(&design, &TimingModel::default());
/// assert!(timing.critical_path() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct StaticTiming {
    /// Worst arrival time at each net (launch edge = 0).
    arrival: Vec<f32>,
    /// Worst downstream delay from each net to any capture point.
    downstream: Vec<f32>,
    critical: f32,
}

impl StaticTiming {
    /// Runs static timing over the combinational core.
    pub fn compute(design: &M3dDesign, model: &TimingModel) -> Self {
        let nl = design.netlist();
        let n = nl.net_count();
        let mut arrival = vec![0.0f32; n];
        let net_delay = |net: NetId| -> f32 {
            let driver = nl.net(net).driver();
            let tier = design.tier_of_gate(driver);
            let mut d = model.placed_wire_delay(tier);
            if design.miv_on_net(net).is_some() {
                d += model.miv_delay;
            }
            d
        };

        // Forward pass in topological order.
        for &g in nl.topo_order() {
            let gate = nl.gate(g);
            let tier = design.tier_of_gate(g);
            let in_arr = gate
                .inputs()
                .iter()
                .map(|&i| arrival[i.index()] + net_delay(i))
                .fold(0.0f32, f32::max);
            let out = gate.output().expect("combinational gates drive nets");
            arrival[out.index()] = in_arr + model.placed_gate_delay(gate.kind(), tier);
        }

        // Backward pass: worst remaining delay to a capture point.
        let mut downstream = vec![f32::NEG_INFINITY; n];
        for &f in nl.flops() {
            let d_net = nl.gate(f).inputs()[0];
            let d = downstream[d_net.index()].max(net_delay(d_net));
            downstream[d_net.index()] = d;
        }
        for &g in nl.topo_order().iter().rev() {
            let gate = nl.gate(g);
            let tier = design.tier_of_gate(g);
            let out = gate.output().expect("combinational gates drive nets");
            if downstream[out.index()] == f32::NEG_INFINITY {
                continue;
            }
            let through = downstream[out.index()] + model.placed_gate_delay(gate.kind(), tier);
            for &i in gate.inputs() {
                let v = through + net_delay(i);
                if v > downstream[i.index()] {
                    downstream[i.index()] = v;
                }
            }
        }
        for d in &mut downstream {
            if *d == f32::NEG_INFINITY {
                *d = 0.0;
            }
        }

        // Capture-edge arrival includes the D net's interconnect delay
        // (consistent with `downstream`, which starts at net_delay(D)).
        let critical = nl
            .flops()
            .iter()
            .map(|&f| {
                let d_net = nl.gate(f).inputs()[0];
                arrival[d_net.index()] + net_delay(d_net)
            })
            .fold(0.0f32, f32::max);

        StaticTiming {
            arrival,
            downstream,
            critical,
        }
    }

    /// Worst arrival time at a net.
    #[inline]
    pub fn arrival(&self, net: NetId) -> f32 {
        self.arrival[net.index()]
    }

    /// The critical launch-to-capture path delay (sets the minimum clock
    /// period).
    #[inline]
    pub fn critical_path(&self) -> f32 {
        self.critical
    }

    /// Longest structural path *through* a fault site: arrival at the site
    /// plus the worst remaining delay to a capture point.
    pub fn longest_path_through(&self, design: &M3dDesign, site: SiteId) -> f32 {
        let net = site_net(design, site);
        self.arrival[net.index()] + self.downstream[net.index()]
    }

    /// The smallest delay-defect size `δ` at `site` that could miss the
    /// capture edge at `clock_period`: the site's path slack. A gross
    /// (infinite) TDF is detectable wherever this is finite; real small
    /// defects below this bound are *undetectable* and must be screened by
    /// faster-than-at-speed testing.
    pub fn min_detectable_delta(&self, design: &M3dDesign, site: SiteId, clock_period: f32) -> f32 {
        (clock_period - self.longest_path_through(design, site)).max(0.0)
    }

    /// Mean minimum-detectable delta per tier — the paper's motivation in
    /// numbers: the slow bottom-tier interconnect and degraded top-tier
    /// devices shift path slack differently per tier.
    pub fn tier_slack_profile(&self, design: &M3dDesign, clock_period: f32) -> [f32; 2] {
        let mut sum = [0.0f64; 2];
        let mut count = [0usize; 2];
        for (site, pos) in design.sites().iter() {
            let tier = match pos {
                SitePos::Miv(_) => continue,
                _ => design.tier_of_site(site).expect("pin sites have tiers"),
            };
            sum[tier.index()] += f64::from(self.min_detectable_delta(design, site, clock_period));
            count[tier.index()] += 1;
        }
        [
            (sum[0] / count[0].max(1) as f64) as f32,
            (sum[1] / count[1].max(1) as f64) as f32,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    fn setup() -> (M3dDesign, StaticTiming) {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Tate, Some(400));
        let t = StaticTiming::compute(&d, &TimingModel::default());
        (d, t)
    }

    #[test]
    fn arrivals_increase_along_paths() {
        let (d, t) = setup();
        let nl = d.netlist();
        for &g in nl.topo_order() {
            let out = nl.gate(g).output().expect("drives");
            for &i in nl.gate(g).inputs() {
                assert!(
                    t.arrival(out) > t.arrival(i) - 1e-6,
                    "arrival must not decrease through a gate"
                );
            }
        }
    }

    #[test]
    fn critical_path_bounds_every_site_path() {
        let (d, t) = setup();
        for (site, _) in d.sites().iter() {
            assert!(
                t.longest_path_through(&d, site) <= t.critical_path() + 1e-4,
                "no path exceeds the critical path"
            );
        }
    }

    #[test]
    fn min_detectable_delta_is_slack() {
        let (d, t) = setup();
        let period = t.critical_path() * 1.1;
        let mut nonzero = 0;
        for (site, _) in d.sites().iter().take(400) {
            let delta = t.min_detectable_delta(&d, site, period);
            let path = t.longest_path_through(&d, site);
            assert!((delta - (period - path).max(0.0)).abs() < 1e-5);
            if delta > 0.0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 0, "off-critical sites have positive slack");
    }

    #[test]
    fn miv_delay_penalty_lengthens_cut_paths() {
        let (d, _) = setup();
        let base = TimingModel {
            miv_delay: 0.0,
            ..TimingModel::default()
        };
        let heavy = TimingModel {
            miv_delay: 2.0,
            ..TimingModel::default()
        };
        let t0 = StaticTiming::compute(&d, &base);
        let t1 = StaticTiming::compute(&d, &heavy);
        // Paths through MIVs must lengthen; critical path can only grow.
        assert!(t1.critical_path() >= t0.critical_path());
        let m = d.miv_site(0);
        assert!(t1.longest_path_through(&d, m) > t0.longest_path_through(&d, m));
    }

    #[test]
    fn tier_profile_reflects_technology_penalties() {
        let (d, t) = setup();
        let period = t.critical_path() * 1.2;
        let profile = t.tier_slack_profile(&d, period);
        assert!(profile[0] > 0.0 && profile[1] > 0.0);
        // With symmetric penalties removed, the profile moves.
        let flat = TimingModel {
            top_tier_device_penalty: 1.0,
            bottom_tier_wire_penalty: 1.0,
            ..TimingModel::default()
        };
        let t_flat = StaticTiming::compute(&d, &flat);
        assert!(t_flat.critical_path() < t.critical_path());
    }
}
