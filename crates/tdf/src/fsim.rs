//! Event-driven transition-delay fault simulation.
//!
//! Faults are simulated against the fault-free two-frame baseline: a fault
//! is *activated* in the lanes where its site has the sensitizing
//! transition; in those lanes the site's frame-2 value is delayed (held at
//! its frame-1 value), and the difference is propagated event-driven through
//! the frame-2 logic to the scan-capture points. Activation is evaluated on
//! the fault-free frames — the standard single-transition approximation of
//! TDF simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use m3d_netlist::{FlopId, GateId, GateKind, NetId};
use m3d_part::M3dDesign;

use crate::fault::{injection_scope, site_net, Fault, InjectionScope};
use crate::pattern::{PatternId, PatternSet};
use crate::sim::{BlockSim, Simulator};

/// One failing scan capture: pattern id plus the failing cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Detection {
    /// The failing pattern.
    pub pattern: PatternId,
    /// The scan cell that captured a faulty value.
    pub flop: FlopId,
}

/// Reusable scratch state for block-level fault propagation.
///
/// Create once (allocation-heavy) and reuse across faults and blocks; every
/// call resets only the entries it touched.
#[derive(Debug)]
pub struct BlockDetector<'a> {
    design: &'a M3dDesign,
    /// Faulty frame-2 net values; valid only where `net_dirty`.
    overlay: Vec<u64>,
    net_dirty: Vec<bool>,
    touched_nets: Vec<u32>,
    /// Per-gate heap membership (dedup).
    in_heap: Vec<bool>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Topological position per gate (`u32::MAX` for non-combinational).
    topo_pos: Vec<u32>,
    /// Sparse branch flips: key = gate << 8 | pin.
    branch_flips: Vec<(u64, u64)>,
    /// CSR offsets into `d_flops`, one entry per net plus a tail.
    d_flops_off: Vec<u32>,
    /// Flop indices whose D input is the net (capture-compare candidates).
    d_flops: Vec<u32>,
    /// Flop index per gate (`u32::MAX` for non-flops).
    flop_of_gate: Vec<u32>,
    /// Scratch for candidate-flop collection.
    cand_flops: Vec<u32>,
}

impl<'a> BlockDetector<'a> {
    /// Creates scratch state for a design.
    pub fn new(design: &'a M3dDesign) -> Self {
        let nl = design.netlist();
        let mut topo_pos = vec![u32::MAX; nl.gate_count()];
        for (i, &g) in nl.topo_order().iter().enumerate() {
            topo_pos[g.index()] = i as u32;
        }
        // Net → capturing flops, as a counting-sort CSR: the capture
        // compare then visits only flops whose D net the propagation
        // actually touched, instead of every flop per fault.
        let mut flop_of_gate = vec![u32::MAX; nl.gate_count()];
        let mut counts = vec![0u32; nl.net_count()];
        for (fi, &fgate) in nl.flops().iter().enumerate() {
            flop_of_gate[fgate.index()] = fi as u32;
            counts[nl.gate(fgate).inputs()[0].index()] += 1;
        }
        let mut d_flops_off = vec![0u32; nl.net_count() + 1];
        for n in 0..nl.net_count() {
            d_flops_off[n + 1] = d_flops_off[n] + counts[n];
        }
        let mut d_flops = vec![0u32; d_flops_off[nl.net_count()] as usize];
        let mut cursor: Vec<u32> = d_flops_off[..nl.net_count()].to_vec();
        for (fi, &fgate) in nl.flops().iter().enumerate() {
            let n = nl.gate(fgate).inputs()[0].index();
            d_flops[cursor[n] as usize] = fi as u32;
            cursor[n] += 1;
        }
        BlockDetector {
            design,
            overlay: vec![0; nl.net_count()],
            net_dirty: vec![false; nl.net_count()],
            touched_nets: Vec::new(),
            in_heap: vec![false; nl.gate_count()],
            heap: BinaryHeap::new(),
            topo_pos,
            branch_flips: Vec::new(),
            d_flops_off,
            d_flops,
            flop_of_gate,
            cand_flops: Vec::new(),
        }
    }

    fn branch_flip(&self, gate: GateId, pin: u8) -> u64 {
        let key = (gate.index() as u64) << 8 | u64::from(pin);
        self.branch_flips
            .binary_search_by_key(&key, |&(k, _)| k)
            .map_or(0, |i| self.branch_flips[i].1)
    }

    fn add_branch_flip(&mut self, gate: GateId, pin: u8, flip: u64) {
        let key = (gate.index() as u64) << 8 | u64::from(pin);
        // `branch_flips` stays sorted by key so lookups in the propagation
        // loop are O(log n) instead of a linear scan per gate input.
        match self.branch_flips.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.branch_flips[i].1 |= flip,
            Err(i) => self.branch_flips.insert(i, (key, flip)),
        }
    }

    fn push_gate(&mut self, gate: GateId) {
        let pos = self.topo_pos[gate.index()];
        if pos == u32::MAX || self.in_heap[gate.index()] {
            return;
        }
        self.in_heap[gate.index()] = true;
        self.heap.push(Reverse((pos, gate.index() as u32)));
    }

    fn set_net(&mut self, net: NetId, value: u64) {
        if !self.net_dirty[net.index()] {
            self.net_dirty[net.index()] = true;
            self.touched_nets.push(net.index() as u32);
        }
        self.overlay[net.index()] = value;
    }

    #[inline]
    fn net_value(&self, base: &BlockSim, net: NetId) -> u64 {
        if self.net_dirty[net.index()] {
            self.overlay[net.index()]
        } else {
            base.f2[net.index()]
        }
    }

    /// Seeds the frame-2 flip for one site on `act` lanes.
    fn seed_site(&mut self, base: &BlockSim, site: m3d_netlist::SiteId, act: u64) {
        let nl = self.design.netlist();
        match injection_scope(self.design, site) {
            InjectionScope::Net(n) => {
                let v = self.net_value(base, n) ^ act;
                self.set_net(n, v);
                for &(sink, _) in nl.net(n).sinks() {
                    self.push_gate(sink);
                }
            }
            InjectionScope::Branch(g, pin) => {
                self.add_branch_flip(g, pin, act);
                self.push_gate(g);
            }
            InjectionScope::MivBranches(branches) => {
                for (g, pin) in branches {
                    self.add_branch_flip(g, pin, act);
                    self.push_gate(g);
                }
            }
        }
    }

    /// Event-driven frame-2 propagation in topological order.
    fn propagate(&mut self, base: &BlockSim) {
        let nl = self.design.netlist();
        while let Some(Reverse((_, gi))) = self.heap.pop() {
            let gate = GateId::new(gi as usize);
            self.in_heap[gate.index()] = false;
            let g = nl.gate(gate);
            let mut inputs = [0u64; 4];
            for (pin, &n) in g.inputs().iter().enumerate() {
                inputs[pin] = self.net_value(base, n) ^ self.branch_flip(gate, pin as u8);
            }
            let out = g.output().expect("only combinational gates enter the heap");
            let new = g.kind().eval(&inputs[..g.inputs().len()]);
            if new != self.net_value(base, out) {
                self.set_net(out, new);
                for &(sink, _) in nl.net(out).sinks() {
                    self.push_gate(sink);
                }
            }
        }
    }

    /// Collects the flops whose capture can differ — those with a touched
    /// D net or a direct branch flip on the D pin — into `cand_flops`,
    /// sorted and deduplicated. Untouched flops capture the fault-free
    /// value by construction and need no compare.
    fn collect_candidate_flops(&mut self) {
        self.cand_flops.clear();
        for i in 0..self.touched_nets.len() {
            let n = self.touched_nets[i] as usize;
            let (s, e) = (
                self.d_flops_off[n] as usize,
                self.d_flops_off[n + 1] as usize,
            );
            for j in s..e {
                self.cand_flops.push(self.d_flops[j]);
            }
        }
        for i in 0..self.branch_flips.len() {
            let (key, _) = self.branch_flips[i];
            if key & 0xff == 0 {
                let fi = self.flop_of_gate[(key >> 8) as usize];
                if fi != u32::MAX {
                    self.cand_flops.push(fi);
                }
            }
        }
        self.cand_flops.sort_unstable();
        self.cand_flops.dedup();
    }

    /// Resets the per-call scratch (touched overlay entries and flips).
    fn reset_scratch(&mut self) {
        for &n in &self.touched_nets {
            self.net_dirty[n as usize] = false;
        }
        self.touched_nets.clear();
        self.branch_flips.clear();
    }

    /// Simulates `faults` simultaneously against one block and returns the
    /// failing `(lane, flop)` pairs.
    ///
    /// Multiple faults model the paper's tier-specific systematic defects
    /// (Section VII-A); activation of each fault uses the fault-free frames.
    pub fn detect(&mut self, base: &BlockSim, faults: &[Fault]) -> Vec<(u8, FlopId)> {
        let nl = self.design.netlist();

        // 1. Compute activations and seed injections. Duplicate faults are
        // skipped: stem injections flip bits, so a repeated fault would
        // otherwise cancel itself.
        let mut unique: Vec<Fault> = faults.to_vec();
        unique.sort_unstable();
        unique.dedup();
        for fault in &unique {
            let net = site_net(self.design, fault.site);
            let act = fault
                .polarity
                .activation(base.f1[net.index()], base.f2[net.index()])
                & base.lanes;
            if act == 0 {
                continue;
            }
            self.seed_site(base, fault.site, act);
        }

        // 2. Event-driven frame-2 propagation in topological order.
        self.propagate(base);

        // 3. Compare scan captures at the flops the propagation could have
        // reached (touched D nets plus direct branch flips on D).
        self.collect_candidate_flops();
        let mut detections = Vec::new();
        for i in 0..self.cand_flops.len() {
            let fi = self.cand_flops[i] as usize;
            let fgate = nl.flops()[fi];
            let d_net = nl.gate(fgate).inputs()[0];
            let val = self.net_value(base, d_net) ^ self.branch_flip(fgate, 0);
            let diff = (val ^ base.capture2[fi]) & base.lanes;
            if diff != 0 {
                let mut m = diff;
                while m != 0 {
                    let bit = m.trailing_zeros() as u8;
                    m &= m - 1;
                    detections.push((bit, FlopId::new(fi)));
                }
            }
        }

        // 4. Reset scratch.
        self.reset_scratch();
        detections.sort_unstable();
        detections
    }

    /// Propagates a frame-2 flip at `site` on `lanes` and returns the
    /// union, over all scan flops, of the lanes whose captures differ.
    ///
    /// Because the bit-parallel propagation is lane-wise independent, this
    /// one call answers detection for *both* polarities of the site at
    /// once: a polarity with activation mask `act ⊆ lanes` is detected iff
    /// `returned & act != 0`, exactly as if it had been propagated alone
    /// (the ATPG sweep relies on this to pay for each site's fanout cone
    /// once instead of once per fault).
    pub fn propagate_site_mask(
        &mut self,
        base: &BlockSim,
        site: m3d_netlist::SiteId,
        lanes: u64,
    ) -> u64 {
        if lanes == 0 {
            return 0;
        }
        let nl = self.design.netlist();
        self.seed_site(base, site, lanes);
        self.propagate(base);
        self.collect_candidate_flops();
        let mut diff_union = 0u64;
        for i in 0..self.cand_flops.len() {
            let fi = self.cand_flops[i] as usize;
            let fgate = nl.flops()[fi];
            let d_net = nl.gate(fgate).inputs()[0];
            let val = self.net_value(base, d_net) ^ self.branch_flip(fgate, 0);
            diff_union |= (val ^ base.capture2[fi]) & base.lanes;
        }
        self.reset_scratch();
        diff_union
    }
}

/// Fault simulation over a full pattern set, with the fault-free baseline
/// cached per block.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::Benchmark;
/// use m3d_part::DesignConfig;
/// use m3d_tdf::{full_fault_list, FaultSim, PatternSet};
///
/// let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
/// let patterns = PatternSet::random(design.netlist(), 64, 1);
/// let sim = FaultSim::new(&design, &patterns);
/// let fault = full_fault_list(&design)[0];
/// let _hits = sim.detections(&mut sim.detector(), &[fault]);
/// ```
#[derive(Debug)]
pub struct FaultSim<'a> {
    design: &'a M3dDesign,
    patterns: &'a PatternSet,
    blocks: Vec<BlockSim>,
}

impl<'a> FaultSim<'a> {
    /// Runs the fault-free baseline over every block, fanned across the
    /// `m3d-par` pool (blocks are independent; results are reassembled in
    /// block order, so the baseline is identical at any thread count).
    pub fn new(design: &'a M3dDesign, patterns: &'a PatternSet) -> Self {
        let sim = Simulator::new(design.netlist());
        let blocks = sim.run_blocks(patterns.blocks());
        FaultSim {
            design,
            patterns,
            blocks,
        }
    }

    /// The design under simulation.
    #[inline]
    pub fn design(&self) -> &'a M3dDesign {
        self.design
    }

    /// The simulated pattern set.
    #[inline]
    pub fn patterns(&self) -> &'a PatternSet {
        self.patterns
    }

    /// The cached fault-free baseline per block.
    #[inline]
    pub fn block_sims(&self) -> &[BlockSim] {
        &self.blocks
    }

    /// Creates reusable propagation scratch for this design.
    pub fn detector(&self) -> BlockDetector<'a> {
        BlockDetector::new(self.design)
    }

    /// Simulates an injected fault set against every pattern and returns
    /// all failing `(pattern, flop)` captures.
    pub fn detections(&self, detector: &mut BlockDetector<'_>, faults: &[Fault]) -> Vec<Detection> {
        let mut out = Vec::new();
        for (bi, base) in self.blocks.iter().enumerate() {
            for (bit, flop) in detector.detect(base, faults) {
                out.push(Detection {
                    pattern: self.patterns.id_at(bi, bit),
                    flop,
                });
            }
        }
        out
    }

    /// Like [`FaultSim::detections`], but fans the per-block propagation
    /// across the `m3d_par` pool with one [`BlockDetector`] scratch per
    /// worker. Results are identical to the serial method (blocks are
    /// independent and reassembled in block order).
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic (with its chunk index) after the sibling
    /// blocks finish; use [`FaultSim::try_detections_par`] to receive it as
    /// a typed error instead.
    pub fn detections_par(&self, faults: &[Fault]) -> Vec<Detection> {
        self.try_detections_par(faults)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panic-containing [`FaultSim::detections_par`]: a panic in any
    /// propagation worker is caught per chunk and returned as a typed
    /// [`m3d_par::WorkerPanic`] naming the chunk, deterministically at any
    /// thread count, while sibling blocks complete.
    ///
    /// # Errors
    ///
    /// The first (lowest-chunk-index) worker panic.
    pub fn try_detections_par(
        &self,
        faults: &[Fault],
    ) -> Result<Vec<Detection>, m3d_par::WorkerPanic> {
        let mut span = m3d_obs::span("fault_simulation");
        span.add("faults", faults.len() as u64);
        span.add("blocks", self.blocks.len() as u64);
        let start = std::time::Instant::now();
        let per_block = m3d_par::try_par_map_init(
            &self.blocks,
            || self.detector(),
            |det, base| det.detect(base, faults),
        )?;
        let mut out = Vec::new();
        for (bi, hits) in per_block.into_iter().enumerate() {
            for (bit, flop) in hits {
                out.push(Detection {
                    pattern: self.patterns.id_at(bi, bit),
                    flop,
                });
            }
        }
        span.add("detections", out.len() as u64);
        m3d_obs::counter("tdf.fsim.calls", 1);
        m3d_obs::counter("tdf.fsim.detections", out.len() as u64);
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            m3d_obs::gauge("tdf.fsim.detections_per_s", out.len() as f64 / secs);
        }
        Ok(out)
    }

    /// Lanes of `block` in which `site` transitions (fault-free).
    #[inline]
    pub fn transition_mask(&self, site: m3d_netlist::SiteId, block: usize) -> u64 {
        let net = site_net(self.design, site);
        self.blocks[block].transition(net)
    }

    /// Number of patterns in which `site` transitions — the `Tpat` feature
    /// of the paper's Table I.
    pub fn transition_count(&self, site: m3d_netlist::SiteId) -> u32 {
        (0..self.blocks.len())
            .map(|b| self.transition_mask(site, b).count_ones())
            .sum()
    }
}

// GateKind is used only through eval here; keep the import honest.
const _: fn(GateKind, &[u64]) -> u64 = GateKind::eval;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{full_fault_list, Polarity};
    use m3d_netlist::generate::Benchmark;
    use m3d_netlist::SitePos;
    use m3d_part::DesignConfig;

    fn env() -> (M3dDesign, PatternSet) {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let p = PatternSet::random(d.netlist(), 128, 17);
        (d, p)
    }

    #[test]
    fn unactivated_faults_produce_no_detections() {
        let (d, p) = env();
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        // A site that never transitions can never be detected.
        for (site, _) in d.sites().iter() {
            if sim.transition_count(site) == 0 {
                for pol in Polarity::ALL {
                    assert!(sim
                        .detections(&mut det, &[Fault::new(site, pol)])
                        .is_empty());
                }
            }
        }
    }

    #[test]
    fn some_faults_are_detected() {
        let (d, p) = env();
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        let detected = full_fault_list(&d)
            .iter()
            .filter(|f| !sim.detections(&mut det, &[**f]).is_empty())
            .count();
        assert!(
            detected > d.sites().len() / 2,
            "random patterns should detect many faults, got {detected}"
        );
    }

    #[test]
    fn detection_requires_activation() {
        let (d, p) = env();
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        for f in full_fault_list(&d).iter().take(400) {
            let dets = sim.detections(&mut det, &[*f]);
            for dt in dets {
                let (blk, bit) = p.locate(dt.pattern);
                let net = site_net(&d, f.site);
                let act = f.polarity.activation(
                    sim.block_sims()[blk].f1[net.index()],
                    sim.block_sims()[blk].f2[net.index()],
                );
                assert_ne!(act & (1 << bit), 0, "detected without activation");
            }
        }
    }

    #[test]
    fn parallel_detections_match_serial_at_any_thread_count() {
        let (d, p) = env();
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        let faults = full_fault_list(&d);
        let injected = [faults[11], faults[23], faults[44]];
        let serial = sim.detections(&mut det, &injected);
        for threads in [1, 3, 8] {
            let par = m3d_par::with_threads(threads, || sim.detections_par(&injected));
            assert_eq!(serial, par, "thread count {threads} changed detections");
        }
    }

    #[test]
    fn scratch_reset_makes_runs_independent() {
        let (d, p) = env();
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        let faults = full_fault_list(&d);
        let a = sim.detections(&mut det, &[faults[11]]);
        let _noise = sim.detections(&mut det, &[faults[23], faults[44]]);
        let b = sim.detections(&mut det, &[faults[11]]);
        assert_eq!(a, b, "detector state must fully reset between calls");
    }

    #[test]
    fn stem_fault_detections_superset_branch_single_sink() {
        // For a net with one sink, the output-pin fault and the input-pin
        // fault on that sink are equivalent.
        let (d, p) = env();
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        let nl = d.netlist();
        let mut checked = 0;
        for (site, pos) in d.sites().iter() {
            if checked >= 5 {
                break;
            }
            if let SitePos::Output(g) = pos {
                let Some(out) = nl.gate(g).output() else {
                    continue;
                };
                let sinks = nl.net(out).sinks();
                if sinks.len() != 1 {
                    continue;
                }
                let (sg, sp) = sinks[0];
                if !nl.gate(sg).kind().is_combinational() && nl.gate(sg).kind() != GateKind::Dff {
                    continue;
                }
                let branch_site = d.sites().input_site(sg, sp);
                for pol in Polarity::ALL {
                    let stem = sim.detections(&mut det, &[Fault::new(site, pol)]);
                    let branch = sim.detections(&mut det, &[Fault::new(branch_site, pol)]);
                    assert_eq!(stem, branch, "single-sink stem ≡ branch");
                }
                checked += 1;
            }
        }
        assert!(checked > 0, "test needs at least one single-sink net");
    }

    #[test]
    fn multi_fault_injection_detects_at_least_union_sites() {
        let (d, p) = env();
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        let faults = full_fault_list(&d);
        let f1 = faults[101];
        let f2 = faults[333];
        let both = sim.detections(&mut det, &[f1, f2]);
        let single1 = sim.detections(&mut det, &[f1]);
        if !single1.is_empty() && !both.is_empty() {
            // Multi-fault behaviour is not a strict union (masking exists),
            // but the joint injection must fail somewhere if f1 alone does.
            assert!(!both.is_empty());
        }
    }
}

#[cfg(test)]
mod polarity_tests {
    use super::*;
    use crate::fault::{Fault, Polarity};
    use crate::pattern::PatternSet;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    /// A slow-to-rise fault must only fail patterns where the site rises;
    /// the complementary polarity must fail a disjoint pattern set.
    #[test]
    fn polarities_fail_disjoint_pattern_sets() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Tate, Some(300));
        let p = PatternSet::random(d.netlist(), 192, 5);
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        let mut checked = 0;
        for (site, _) in d.sites().iter() {
            let rise: std::collections::BTreeSet<u32> = sim
                .detections(&mut det, &[Fault::new(site, Polarity::SlowToRise)])
                .into_iter()
                .map(|x| x.pattern)
                .collect();
            let fall: std::collections::BTreeSet<u32> = sim
                .detections(&mut det, &[Fault::new(site, Polarity::SlowToFall)])
                .into_iter()
                .map(|x| x.pattern)
                .collect();
            if rise.is_empty() || fall.is_empty() {
                continue;
            }
            assert!(
                rise.is_disjoint(&fall),
                "site {site}: a pattern cannot activate both polarities"
            );
            checked += 1;
            if checked >= 10 {
                break;
            }
        }
        assert!(checked > 0, "need sites detectable in both polarities");
    }

    /// Injecting the same fault twice must equal injecting it once
    /// (idempotent flips).
    #[test]
    fn duplicate_fault_injection_is_idempotent() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let p = PatternSet::random(d.netlist(), 64, 9);
        let sim = FaultSim::new(&d, &p);
        let mut det = sim.detector();
        let f = crate::fault::full_fault_list(&d)[40];
        let once = sim.detections(&mut det, &[f]);
        let twice = sim.detections(&mut det, &[f, f]);
        assert_eq!(once, twice);
    }
}
