//! Test patterns for launch-on-capture transition-delay testing.
//!
//! A pattern assigns a value to every primary input and every scan cell
//! (the launch state). Patterns are stored bit-packed, 64 to a block, so
//! the simulator evaluates 64 patterns per gate visit (parallel-pattern
//! simulation).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3d_netlist::Netlist;

/// A dense pattern index across a [`PatternSet`].
pub type PatternId = u32;

/// Up to 64 patterns, bit-packed: bit `k` of every word belongs to pattern
/// `base + k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternBlock {
    /// One word per primary input, in `Netlist::inputs()` order.
    pub pi: Vec<u64>,
    /// One word per scan cell (launch state), in `FlopId` order.
    pub scan: Vec<u64>,
    /// Number of valid patterns in this block (1..=64).
    pub count: u8,
}

impl PatternBlock {
    /// Mask selecting the valid pattern lanes of this block.
    #[inline]
    pub fn lane_mask(&self) -> u64 {
        if self.count == 64 {
            !0
        } else {
            (1u64 << self.count) - 1
        }
    }
}

/// A bit-packed collection of test patterns.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::{Benchmark, GenParams};
/// use m3d_tdf::PatternSet;
///
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let pats = PatternSet::random(&nl, 100, 7);
/// assert_eq!(pats.len(), 100);
/// assert_eq!(pats.blocks().len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PatternSet {
    blocks: Vec<PatternBlock>,
    len: usize,
}

impl PatternSet {
    /// An empty pattern set.
    pub fn new() -> Self {
        PatternSet::default()
    }

    /// Generates `n` random-fill patterns (the launch state and PI values
    /// are fully specified, as a compressing ATPG would emit).
    pub fn random(netlist: &Netlist, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = PatternSet::new();
        let mut remaining = n;
        while remaining > 0 {
            let count = remaining.min(64) as u8;
            set.push_block(Self::random_block(netlist, &mut rng, count));
            remaining -= count as usize;
        }
        set
    }

    pub(crate) fn random_block(netlist: &Netlist, rng: &mut StdRng, count: u8) -> PatternBlock {
        let mask = if count == 64 {
            !0u64
        } else {
            (1u64 << count) - 1
        };
        PatternBlock {
            pi: (0..netlist.inputs().len())
                .map(|_| rng.gen::<u64>() & mask)
                .collect(),
            scan: (0..netlist.flops().len())
                .map(|_| rng.gen::<u64>() & mask)
                .collect(),
            count,
        }
    }

    /// Appends a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty.
    pub fn push_block(&mut self, block: PatternBlock) {
        assert!(block.count > 0, "empty pattern block");
        self.len += block.count as usize;
        self.blocks.push(block);
    }

    /// Number of patterns.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set holds no patterns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pattern blocks.
    #[inline]
    pub fn blocks(&self) -> &[PatternBlock] {
        &self.blocks
    }

    /// Decomposes a pattern id into `(block index, lane bit)`.
    ///
    /// Valid because every block except possibly the last holds 64 patterns.
    /// The result is meaningful only for `id < self.len()`; callers handling
    /// untrusted ids (e.g. parsed failure logs) must use
    /// [`PatternSet::checked_locate`] instead.
    #[inline]
    pub fn locate(&self, id: PatternId) -> (usize, u8) {
        ((id / 64) as usize, (id % 64) as u8)
    }

    /// Bounds-checked [`PatternSet::locate`]: `None` when `id` names no
    /// pattern of this set, so out-of-range ids from a malformed failure
    /// log surface as an absent value instead of an out-of-bounds index
    /// downstream.
    #[inline]
    pub fn checked_locate(&self, id: PatternId) -> Option<(usize, u8)> {
        ((id as usize) < self.len).then(|| self.locate(id))
    }

    /// The global id of lane `bit` in block `block`.
    #[inline]
    pub fn id_at(&self, block: usize, bit: u8) -> PatternId {
        (block * 64) as PatternId + PatternId::from(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::{Benchmark, GenParams};

    #[test]
    fn random_sets_have_exact_length() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        for n in [1, 63, 64, 65, 130] {
            let p = PatternSet::random(&nl, n, 1);
            assert_eq!(p.len(), n);
            let total: usize = p.blocks().iter().map(|b| b.count as usize).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn partial_blocks_mask_invalid_lanes() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let p = PatternSet::random(&nl, 10, 3);
        let b = &p.blocks()[0];
        assert_eq!(b.lane_mask(), (1 << 10) - 1);
        for &w in b.pi.iter().chain(&b.scan) {
            assert_eq!(w & !b.lane_mask(), 0, "invalid lanes must be zero");
        }
    }

    #[test]
    fn locate_and_id_round_trip() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let p = PatternSet::random(&nl, 200, 5);
        for id in [0u32, 63, 64, 199] {
            let (blk, bit) = p.locate(id);
            assert_eq!(p.id_at(blk, bit), id);
            assert_eq!(p.checked_locate(id), Some((blk, bit)));
        }
    }

    #[test]
    fn checked_locate_rejects_out_of_range_ids() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let p = PatternSet::random(&nl, 200, 5);
        for id in [200u32, 201, 64 * 4, u32::MAX] {
            assert_eq!(p.checked_locate(id), None, "id {id} is out of range");
        }
        assert_eq!(PatternSet::new().checked_locate(0), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        assert_eq!(
            PatternSet::random(&nl, 77, 9).blocks(),
            PatternSet::random(&nl, 77, 9).blocks()
        );
    }
}
