//! Transition-delay ATPG: random-fill pattern generation with fault
//! dropping.
//!
//! The paper's TDF patterns come from a commercial compressing ATPG; the
//! published design matrix only constrains the *artefacts* — a pattern set
//! with known fault coverage (97–99%). This generator reproduces those
//! artefacts with the textbook flow: emit random-fill pattern blocks,
//! fault-simulate the undetected faults against each block, keep blocks
//! that detect new faults, and stop at the coverage target.

use rand::rngs::StdRng;
use rand::SeedableRng;

use m3d_part::M3dDesign;

use crate::fault::{full_fault_list, site_net, testable_sites, Fault};
use crate::fsim::BlockDetector;
use crate::pattern::PatternSet;
use crate::sim::Simulator;

/// ATPG stopping criteria.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AtpgConfig {
    /// Stop once this fraction of the fault universe is detected.
    pub target_coverage: f64,
    /// Hard cap on emitted patterns.
    pub max_patterns: usize,
    /// Pattern-fill seed.
    pub seed: u64,
}

impl AtpgConfig {
    /// A configuration suited to the scaled benchmarks: 95% coverage,
    /// at most `max_patterns` patterns.
    pub fn new(seed: u64, max_patterns: usize) -> Self {
        AtpgConfig {
            target_coverage: 0.95,
            max_patterns,
            seed,
        }
    }
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig::new(1, 1024)
    }
}

/// The output of ATPG: the kept patterns plus coverage bookkeeping.
#[derive(Clone, Debug)]
pub struct TestSet {
    /// The generated pattern set.
    pub patterns: PatternSet,
    /// Achieved coverage over the *testable* TDF faults (the FC a
    /// commercial tool reports; structurally untestable faults excluded).
    pub fault_coverage: f64,
    /// Per-fault detection flags, aligned with
    /// [`full_fault_list`](crate::full_fault_list).
    pub detected: Vec<bool>,
    /// Per-fault structural testability, aligned with `detected`.
    pub testable: Vec<bool>,
}

impl TestSet {
    /// Number of patterns kept.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }
}

/// Generates a TDF test set for `design`.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::Benchmark;
/// use m3d_part::DesignConfig;
/// use m3d_tdf::{generate_patterns, AtpgConfig};
///
/// let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
/// let ts = generate_patterns(&design, &AtpgConfig::new(1, 256));
/// assert!(ts.fault_coverage > 0.5);
/// ```
pub fn generate_patterns(design: &M3dDesign, config: &AtpgConfig) -> TestSet {
    generate(design, config, None)
}

/// Like [`generate_patterns`], but skips simulating faults at sites the
/// caller has *proven* undetectable (`skip_sites[site] == true`, indexed
/// by `SiteId`; `m3d-dataflow` produces such masks).
///
/// The skip mask only filters the per-block simulation sweep: the
/// testable-fault denominator, the coverage stopping rule, the pattern
/// blocks and every detection flag are computed exactly as in
/// [`generate_patterns`]. If the mask honours its contract (skipped
/// faults are never detectable), the returned [`TestSet`] is bitwise
/// identical to the unpruned one — the sweep just stops paying for faults
/// that cannot hit.
pub fn generate_patterns_pruned(
    design: &M3dDesign,
    config: &AtpgConfig,
    skip_sites: &[bool],
) -> TestSet {
    assert_eq!(
        skip_sites.len(),
        design.sites().len(),
        "skip mask must cover every site"
    );
    generate(design, config, Some(skip_sites))
}

fn generate(design: &M3dDesign, config: &AtpgConfig, skip_sites: Option<&[bool]>) -> TestSet {
    let mut span = m3d_obs::span("atpg");
    let faults = full_fault_list(design);
    let site_ok = testable_sites(design);
    let testable: Vec<bool> = faults.iter().map(|f| site_ok[f.site.index()]).collect();
    let testable_n = testable.iter().filter(|&&t| t).count().max(1);
    let skip = |i: usize| skip_sites.is_some_and(|s| s[faults[i].site.index()]);
    let pruned_n = (0..faults.len())
        .filter(|&i| testable[i] && skip(i))
        .count();
    span.add("faults_pruned", pruned_n as u64);
    m3d_obs::counter("tdf.atpg.faults_pruned", pruned_n as u64);
    let mut detected = vec![false; faults.len()];
    let mut detected_n = 0usize;

    let sim = Simulator::new(design.netlist());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut patterns = PatternSet::new();
    let mut misses = 0u32;

    while patterns.len() < config.max_patterns
        && (detected_n as f64) < config.target_coverage * testable_n as f64
    {
        let count = 64.min(config.max_patterns - patterns.len()) as u8;
        let block = PatternSet::random_block(design.netlist(), &mut rng, count);
        let base = sim.run_block(&block);
        // The sweep dominates ATPG runtime. Faults are grouped by site:
        // the two polarities have disjoint activation lanes and the
        // bit-parallel propagation is lane-wise independent, so one
        // propagation of the union mask answers both — each remaining
        // site pays for its fanout cone once per block. Sites are
        // independent against the fixed baseline and fan across the pool
        // with one propagation scratch per worker.
        let undetected_sites: Vec<u32> = (0..design.sites().len() as u32)
            .filter(|&s| {
                let (i0, i1) = (2 * s as usize, 2 * s as usize + 1);
                (!detected[i0] && testable[i0] && !skip(i0))
                    || (!detected[i1] && testable[i1] && !skip(i1))
            })
            .collect();
        let faults_swept: u64 = undetected_sites
            .iter()
            .map(|&s| {
                let (i0, i1) = (2 * s as usize, 2 * s as usize + 1);
                u64::from(!detected[i0] && testable[i0] && !skip(i0))
                    + u64::from(!detected[i1] && testable[i1] && !skip(i1))
            })
            .sum();
        let sweep_start = std::time::Instant::now();
        let hits = m3d_par::par_map_init(
            &undetected_sites,
            || BlockDetector::new(design),
            |det, &s| {
                let (i0, i1) = (2 * s as usize, 2 * s as usize + 1);
                debug_assert_eq!(faults[i0].site.index(), s as usize);
                let net = site_net(design, faults[i0].site);
                let (f1, f2) = (base.f1[net.index()], base.f2[net.index()]);
                let act = [
                    faults[i0].polarity.activation(f1, f2) & base.lanes,
                    faults[i1].polarity.activation(f1, f2) & base.lanes,
                ];
                let want = [
                    !detected[i0] && testable[i0] && !skip(i0),
                    !detected[i1] && testable[i1] && !skip(i1),
                ];
                let lanes = (if want[0] { act[0] } else { 0 }) | (if want[1] { act[1] } else { 0 });
                let diff = det.propagate_site_mask(&base, faults[i0].site, lanes);
                [want[0] && diff & act[0] != 0, want[1] && diff & act[1] != 0]
            },
        );
        m3d_obs::observe(
            "tdf.atpg.block_sweep_us",
            sweep_start.elapsed().as_micros() as f64,
        );
        span.add("blocks_tried", 1);
        span.add("faults_swept", faults_swept);
        span.add("sites_swept", undetected_sites.len() as u64);
        let mut new_hits = 0usize;
        for (&s, hit) in undetected_sites.iter().zip(hits) {
            for (p, &h) in hit.iter().enumerate() {
                if h {
                    detected[2 * s as usize + p] = true;
                    detected_n += 1;
                    new_hits += 1;
                }
            }
        }
        // Fault dropping: keep only blocks that paid for themselves; give
        // up after a few consecutive useless blocks (random-resistant tail).
        if new_hits > 0 {
            misses = 0;
            span.add("blocks_kept", 1);
            patterns.push_block(block);
        } else {
            misses += 1;
            if misses >= 3 {
                break;
            }
        }
    }

    let fault_coverage = detected_n as f64 / testable_n as f64;
    span.add("patterns", patterns.len() as u64);
    m3d_obs::counter("tdf.atpg.patterns", patterns.len() as u64);
    m3d_obs::gauge("tdf.atpg.fault_coverage", fault_coverage);
    TestSet {
        patterns,
        fault_coverage,
        detected,
        testable,
    }
}

/// The faults a test set leaves undetected (useful for coverage reports).
pub fn undetected_faults(design: &M3dDesign, test_set: &TestSet) -> Vec<Fault> {
    full_fault_list(design)
        .into_iter()
        .zip(&test_set.detected)
        .filter(|&(_, &d)| !d)
        .map(|(f, _)| f)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    #[test]
    fn atpg_reaches_useful_coverage() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let ts = generate_patterns(&d, &AtpgConfig::new(1, 512));
        assert!(
            ts.fault_coverage > 0.85,
            "coverage {} too low",
            ts.fault_coverage
        );
        assert!(ts.pattern_count() > 0);
        let testable_n = ts.testable.iter().filter(|&&t| t).count();
        assert_eq!(
            ts.detected.iter().filter(|&&d| d).count(),
            (ts.fault_coverage * testable_n as f64).round() as usize
        );
    }

    #[test]
    fn atpg_is_deterministic() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let a = generate_patterns(&d, &AtpgConfig::new(7, 256));
        let b = generate_patterns(&d, &AtpgConfig::new(7, 256));
        assert_eq!(a.pattern_count(), b.pattern_count());
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn pattern_cap_is_respected() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let ts = generate_patterns(&d, &AtpgConfig::new(1, 64));
        assert!(ts.pattern_count() <= 64);
    }

    #[test]
    fn pruned_atpg_is_bitwise_identical_under_a_sound_mask() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        // The structural untestable set is a sound skip mask by definition.
        let skip: Vec<bool> = testable_sites(&d).iter().map(|&t| !t).collect();
        assert!(skip.iter().any(|&s| s), "archetype has untestable sites");
        let base = generate_patterns(&d, &AtpgConfig::new(5, 256));
        let pruned = generate_patterns_pruned(&d, &AtpgConfig::new(5, 256), &skip);
        assert_eq!(base.detected, pruned.detected);
        assert_eq!(base.testable, pruned.testable);
        assert_eq!(base.fault_coverage, pruned.fault_coverage);
        assert_eq!(base.patterns.blocks(), pruned.patterns.blocks());
    }

    #[test]
    fn undetected_list_matches_coverage() {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let ts = generate_patterns(&d, &AtpgConfig::new(1, 256));
        let undet = undetected_faults(&d, &ts);
        assert_eq!(undet.len(), ts.detected.iter().filter(|&&x| !x).count());
    }
}
