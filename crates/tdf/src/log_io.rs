//! Plain-text failure-log serialization (the tester datalog format).
//!
//! ```text
//! # m3d-faillog v1
//! fail pattern 12 flop 7          # bypass observation
//! fail pattern 19 channel 2 cycle 5   # compacted observation
//! ```

use std::error::Error;
use std::fmt;

use m3d_dft::ObsPoint;
use m3d_netlist::FlopId;

use crate::log::{FailEntry, FailureLog};

/// Error raised while parsing a failure-log file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLogError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column of the offending token.
    pub col: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.reason)
    }
}

impl Error for ParseLogError {}

/// Serializes a failure log to the text format.
///
/// # Examples
///
/// ```
/// use m3d_tdf::{read_failure_log, write_failure_log, FailureLog};
///
/// # fn main() -> Result<(), m3d_tdf::ParseLogError> {
/// let empty = FailureLog::default();
/// let text = write_failure_log(&empty);
/// assert_eq!(read_failure_log(&text)?, empty);
/// # Ok(())
/// # }
/// ```
pub fn write_failure_log(log: &FailureLog) -> String {
    let mut out = String::from("# m3d-faillog v1\n");
    for e in log.entries() {
        match e.obs {
            ObsPoint::Flop(f) => {
                out.push_str(&format!("fail pattern {} flop {}\n", e.pattern, f.index()));
            }
            ObsPoint::ChannelCycle { channel, cycle } => {
                out.push_str(&format!(
                    "fail pattern {} channel {channel} cycle {cycle}\n",
                    e.pattern
                ));
            }
        }
    }
    out
}

/// Splits a line into whitespace-separated tokens, each paired with its
/// 1-based character column in the untrimmed line.
fn tokens_with_columns(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut col = 0usize;
    let mut start: Option<(usize, usize)> = None; // (byte offset, column)
    for (b, ch) in line.char_indices() {
        col += 1;
        if ch.is_whitespace() {
            if let Some((s, c)) = start.take() {
                out.push((c, &line[s..b]));
            }
        } else if start.is_none() {
            start = Some((b, col));
        }
    }
    if let Some((s, c)) = start {
        out.push((c, &line[s..]));
    }
    out
}

/// Parses the text format back into a [`FailureLog`].
///
/// Never panics, whatever the input bytes: every failure is reported as a
/// [`ParseLogError`] carrying the 1-based line and column of the offending
/// token (the fuzz suite in `tests/log_fuzz.rs` holds this to arbitrary
/// input).
///
/// # Errors
///
/// Returns [`ParseLogError`] with the offending position on malformed
/// input.
pub fn read_failure_log(text: &str) -> Result<FailureLog, ParseLogError> {
    let mut entries = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let lineno = ln + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let toks = tokens_with_columns(raw);
        let parse_num = |ti: usize, what: &str| -> Result<u32, ParseLogError> {
            let (col, tok) = toks[ti];
            tok.parse().map_err(|_| ParseLogError {
                line: lineno,
                col,
                reason: format!("bad {what} `{tok}`"),
            })
        };
        let words: Vec<&str> = toks.iter().map(|&(_, t)| t).collect();
        match words.as_slice() {
            ["fail", "pattern", _, "flop", _] => entries.push(FailEntry {
                pattern: parse_num(2, "pattern")?,
                obs: ObsPoint::Flop(FlopId::new(parse_num(4, "flop")? as usize)),
            }),
            ["fail", "pattern", _, "channel", _, "cycle", _] => entries.push(FailEntry {
                pattern: parse_num(2, "pattern")?,
                obs: ObsPoint::ChannelCycle {
                    channel: parse_num(4, "channel")? as u16,
                    cycle: parse_num(6, "cycle")? as u16,
                },
            }),
            _ => {
                return Err(ParseLogError {
                    line: lineno,
                    col: toks.first().map_or(1, |&(c, _)| c),
                    reason: "expected `fail pattern <p> flop <f>` or \
                             `fail pattern <p> channel <c> cycle <y>`"
                        .to_owned(),
                })
            }
        }
    }
    Ok(entries.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailureLog {
        vec![
            FailEntry {
                pattern: 3,
                obs: ObsPoint::Flop(FlopId::new(9)),
            },
            FailEntry {
                pattern: 12,
                obs: ObsPoint::ChannelCycle {
                    channel: 1,
                    cycle: 4,
                },
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip_is_lossless() {
        let log = sample();
        let text = write_failure_log(&log);
        assert_eq!(read_failure_log(&text).expect("round trip"), log);
        // Canonical: serializing again is byte-identical.
        assert_eq!(
            write_failure_log(&read_failure_log(&text).expect("parse")),
            text
        );
    }

    #[test]
    fn bad_lines_are_reported_with_position() {
        let err = read_failure_log("# ok\nfail pattern x flop 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        // `x` starts at character 14 of "fail pattern x flop 2".
        assert_eq!(err.col, 14);
        assert!(err.to_string().contains("bad pattern"));
        assert!(err.to_string().contains("line 2, col 14"));
        let err = read_failure_log("nonsense\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 1));
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn columns_account_for_leading_whitespace() {
        let err = read_failure_log("   fail pattern 3 flop NOPE\n").unwrap_err();
        assert_eq!(err.line, 1);
        // "NOPE" starts at character 24 (3 leading spaces + "fail pattern 3 flop ").
        assert_eq!(err.col, 24);
        let err = read_failure_log("\t\tgarbage\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
    }

    #[test]
    fn parsing_sorts_and_dedups_like_from_iterator() {
        let text = "fail pattern 9 flop 1\nfail pattern 2 flop 0\nfail pattern 9 flop 1\n";
        let log = read_failure_log(text).expect("parses");
        assert_eq!(log.len(), 2);
        assert_eq!(log.failing_patterns(), vec![2, 9]);
    }
}
