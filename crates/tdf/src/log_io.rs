//! Plain-text failure-log serialization (the tester datalog format).
//!
//! ```text
//! # m3d-faillog v1
//! fail pattern 12 flop 7          # bypass observation
//! fail pattern 19 channel 2 cycle 5   # compacted observation
//! ```

use std::error::Error;
use std::fmt;

use m3d_dft::ObsPoint;
use m3d_netlist::FlopId;

use crate::log::{FailEntry, FailureLog};

/// Error raised while parsing a failure-log file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLogError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseLogError {}

/// Serializes a failure log to the text format.
///
/// # Examples
///
/// ```
/// use m3d_tdf::{read_failure_log, write_failure_log, FailureLog};
///
/// # fn main() -> Result<(), m3d_tdf::ParseLogError> {
/// let empty = FailureLog::default();
/// let text = write_failure_log(&empty);
/// assert_eq!(read_failure_log(&text)?, empty);
/// # Ok(())
/// # }
/// ```
pub fn write_failure_log(log: &FailureLog) -> String {
    let mut out = String::from("# m3d-faillog v1\n");
    for e in log.entries() {
        match e.obs {
            ObsPoint::Flop(f) => {
                out.push_str(&format!("fail pattern {} flop {}\n", e.pattern, f.index()));
            }
            ObsPoint::ChannelCycle { channel, cycle } => {
                out.push_str(&format!(
                    "fail pattern {} channel {channel} cycle {cycle}\n",
                    e.pattern
                ));
            }
        }
    }
    out
}

/// Parses the text format back into a [`FailureLog`].
///
/// # Errors
///
/// Returns [`ParseLogError`] with the offending line on malformed input.
pub fn read_failure_log(text: &str) -> Result<FailureLog, ParseLogError> {
    let mut entries = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        let lineno = ln + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: &str| ParseLogError {
            line: lineno,
            reason: reason.to_owned(),
        };
        let toks: Vec<&str> = line.split_whitespace().collect();
        let parse_num = |tok: &str, what: &str| -> Result<u32, ParseLogError> {
            tok.parse().map_err(|_| bad(&format!("bad {what} `{tok}`")))
        };
        match toks.as_slice() {
            ["fail", "pattern", p, "flop", f] => entries.push(FailEntry {
                pattern: parse_num(p, "pattern")?,
                obs: ObsPoint::Flop(FlopId::new(parse_num(f, "flop")? as usize)),
            }),
            ["fail", "pattern", p, "channel", c, "cycle", y] => entries.push(FailEntry {
                pattern: parse_num(p, "pattern")?,
                obs: ObsPoint::ChannelCycle {
                    channel: parse_num(c, "channel")? as u16,
                    cycle: parse_num(y, "cycle")? as u16,
                },
            }),
            _ => return Err(bad(
                "expected `fail pattern <p> flop <f>` or `fail pattern <p> channel <c> cycle <y>`",
            )),
        }
    }
    Ok(entries.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailureLog {
        vec![
            FailEntry {
                pattern: 3,
                obs: ObsPoint::Flop(FlopId::new(9)),
            },
            FailEntry {
                pattern: 12,
                obs: ObsPoint::ChannelCycle {
                    channel: 1,
                    cycle: 4,
                },
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip_is_lossless() {
        let log = sample();
        let text = write_failure_log(&log);
        assert_eq!(read_failure_log(&text).expect("round trip"), log);
        // Canonical: serializing again is byte-identical.
        assert_eq!(
            write_failure_log(&read_failure_log(&text).expect("parse")),
            text
        );
    }

    #[test]
    fn bad_lines_are_reported_with_position() {
        let err = read_failure_log("# ok\nfail pattern x flop 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bad pattern"));
        let err = read_failure_log("nonsense\n").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn parsing_sorts_and_dedups_like_from_iterator() {
        let text = "fail pattern 9 flop 1\nfail pattern 2 flop 0\nfail pattern 9 flop 1\n";
        let log = read_failure_log(text).expect("parses");
        assert_eq!(log.len(), 2);
        assert_eq!(log.failing_patterns(), vec![2, 9]);
    }
}
