//! The [`Strategy`] trait and its combinators.

use std::ops::Range;

use rand::{Rng, RngCore};

use crate::TestRng;

/// A recipe for producing random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// a strategy is just a deterministic sampler over a seeded rng.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen_value(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A strategy that always yields clones of one value (upstream's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boxed strategies, for heterogeneous collections of strategies.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Erases a strategy's concrete type.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Box::new(move |rng| s.gen_value(rng)))
}

/// Internal helper: sample a uniform usize from a range (used by
/// [`crate::collection::vec`]).
pub(crate) fn sample_len(rng: &mut TestRng, range: &Range<usize>) -> usize {
    debug_assert!(range.start < range.end, "empty length range");
    let span = (range.end - range.start) as u64;
    range.start + (rng.next_u64() % span) as usize
}
