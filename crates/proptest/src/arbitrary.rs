//! The [`any`] strategy: full-domain sampling for primitive types.

use rand::Rng;

use crate::strategy::Strategy;
use crate::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
