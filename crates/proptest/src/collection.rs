//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::{sample_len, Strategy};
use crate::TestRng;

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = sample_len(rng, &self.len);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// A strategy for vectors of `element` values with a length drawn from
/// `len` (half-open, like upstream's `SizeRange`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty vec length range");
    VecStrategy { element, len }
}
