//! Test-runner configuration.

/// How many cases each property test runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (everything else default).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
