//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the slice of the proptest API its test suites use: the [`proptest!`]
//! macro, range / tuple / [`collection::vec`] / [`any`] strategies,
//! [`Strategy::prop_map`], and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. A failing case panics immediately with the ordinary
//! `assert!` message plus the deterministic case seed, which is enough to
//! reproduce (cases are derived from the test name and case index, so a
//! failure replays on every run).

use rand::rngs::StdRng;

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod test_runner;

#[doc(hidden)]
pub mod runtime {
    //! Internals used by the [`proptest!`](crate::proptest) macro expansion.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-case seed: FNV-1a over the test name, mixed with
    /// the case index.
    pub fn seed_for(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// The strategy-driven test rng (re-exported for strategy implementors).
pub type TestRng = StdRng;

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    // Lets test files spell `prop::collection::vec(...)` as with upstream.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies for a configured number
/// of cases and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let seed = $crate::runtime::seed_for(stringify!($name), case);
                    let mut rng = <$crate::runtime::StdRng as $crate::runtime::SeedableRng>::seed_from_u64(seed);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::gen_value(&strategies, &mut rng);
                    // The closure gives `prop_assume!` an early-exit channel
                    // (plain `return` skips just this case).
                    let run_case = move || { $body };
                    run_case();
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        assert_eq!(
            crate::runtime::seed_for("alpha", 3),
            crate::runtime::seed_for("alpha", 3)
        );
        assert_ne!(
            crate::runtime::seed_for("alpha", 3),
            crate::runtime::seed_for("beta", 3)
        );
        assert_ne!(
            crate::runtime::seed_for("alpha", 3),
            crate::runtime::seed_for("alpha", 4)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            small in 0u8..4,
            big in (10u64..20).prop_map(|v| v * 2),
            word in any::<u16>(),
        ) {
            prop_assert!(small < 4);
            prop_assert!((20..40).contains(&big));
            prop_assert_eq!(big % 2, 0);
            let _ = word; // full range: nothing to bound
        }

        #[test]
        fn vec_strategy_respects_length_range(
            items in prop::collection::vec((0u8..7, any::<u16>()), 3..9),
        ) {
            prop_assert!((3..9).contains(&items.len()));
            for (k, _) in items {
                prop_assert!(k < 7);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
