//! Deterministic scoped data-parallelism for the M3D workspace.
//!
//! Every hot path of the reproduction — GNN training, fault simulation,
//! dataset generation, evaluation — fans out through this crate. The
//! guarantee that makes that safe for a *reproduction* (where numbers in
//! tables must be explainable) is **determinism**: for a fixed input, the
//! result of every function here is bitwise identical regardless of the
//! thread count.
//!
//! Three design rules deliver that guarantee:
//!
//! 1. **Chunking is a function of the input length only.** Work is split
//!    into chunks whose boundaries never depend on the thread count (see
//!    [`default_chunk_size`]). Threads *claim* chunks dynamically (for load
//!    balance), but which items share a chunk is fixed.
//! 2. **Results are reassembled in chunk-index order.** Maps preserve item
//!    order; [`par_fold`] merges per-chunk accumulators left-to-right by
//!    chunk index, so floating-point sums associate the same way at any
//!    thread count — including the `threads = 1` fallback, which walks the
//!    identical chunk sequence inline without spawning.
//! 3. **Per-item work must be pure.** Closures may use per-thread scratch
//!    ([`par_map_init`]) but the output for an item must not depend on
//!    which thread ran it or on scratch history.
//!
//! # Thread-count configuration
//!
//! The pool width comes from, in order of precedence:
//!
//! 1. a scoped [`with_threads`] override (used by tests and benches),
//! 2. the `M3D_THREADS` environment variable (parsed once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! `M3D_THREADS=1` (or a single-core host) selects the documented serial
//! fallback: the same chunk walk, inline on the calling thread.
//!
//! Nested calls (a `par_*` invoked from inside a worker closure) run
//! serially on the worker — parallelism lives at the outermost call site,
//! so pipelines never oversubscribe the machine.
//!
//! # Examples
//!
//! ```
//! let items: Vec<u64> = (0..1000).collect();
//! let doubled = m3d_par::par_map(&items, |&x| x * 2);
//! assert_eq!(doubled[999], 1998);
//!
//! // Deterministic float reduction: identical bits at any thread count.
//! let xs: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
//! let sum = |threads: usize| {
//!     m3d_par::with_threads(threads, || {
//!         m3d_par::par_fold(
//!             &xs,
//!             m3d_par::default_chunk_size(xs.len()),
//!             || 0.0f32,
//!             |acc, _, &x| acc + x,
//!             |a, b| a + b,
//!         )
//!     })
//! };
//! assert_eq!(sum(1).to_bits(), sum(8).to_bits());
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// Upper bound on the number of chunks the default policy creates.
///
/// Large enough that dynamic claiming balances uneven per-item cost across
/// any realistic core count, small enough that per-chunk overhead (one
/// channel send) is negligible. Fixed — never derived from the thread
/// count — so chunk boundaries, and therefore reduction order, are a
/// function of the input length only.
const DEFAULT_MAX_CHUNKS: usize = 64;

thread_local! {
    /// Scoped thread-count override (0 = none). Thread-local so parallel
    /// tests cannot race each other through a global.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Set inside pool workers: nested `par_*` calls run serially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Scoped break-even override for [`par_gate`] (`u64::MAX` = none).
    static THRESHOLD_OVERRIDE: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// The default chunk size for `len` items: at most `DEFAULT_MAX_CHUNKS` (64)
/// chunks, never empty. A function of `len` only — see the crate docs for
/// why that matters.
pub fn default_chunk_size(len: usize) -> usize {
    len.div_ceil(DEFAULT_MAX_CHUNKS).max(1)
}

fn configured_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("M3D_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The pool width the next `par_*` call on this thread will use.
///
/// Inside a worker closure this is always 1 (nested calls are serial).
pub fn num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        configured_threads()
    }
}

/// Runs `f` with the pool width pinned to `n` on this thread (restored on
/// exit, including on panic). Used by the determinism tests and the
/// `BENCH_pipeline` harness to compare `threads = 1` against `threads = N`
/// inside one process.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be positive");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(n)));
    f()
}

/// Ratio between estimated serial work and dispatch overhead below which
/// [`par_gate`] recommends staying serial: the pool must be able to win
/// back at least this multiple of its own spawn/join cost before it is
/// worth engaging.
const GATE_WORK_FACTOR: u64 = 8;

/// One-per-process calibration of the break-even work size (in element
/// units) for a pool dispatch. Measures (a) the wall cost of a minimal
/// two-worker dispatch — scope spawn, chunk claim, channel send, join —
/// and (b) the per-element cost of a simple float multiply-add stream,
/// then sets the break-even at [`GATE_WORK_FACTOR`] dispatch-costs worth
/// of elements. `M3D_PAR_THRESHOLD` (elements; `0` = always parallel)
/// skips the measurement entirely.
///
/// The calibration is timing-derived and therefore varies per process —
/// which is safe precisely because [`par_gate`] only ever chooses between
/// two paths that are bitwise identical by this crate's chunking rules.
fn calibrated_break_even() -> u64 {
    static CAL: OnceLock<u64> = OnceLock::new();
    *CAL.get_or_init(|| {
        if let Some(v) = std::env::var("M3D_PAR_THRESHOLD")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            return v;
        }
        // (a) dispatch overhead: two one-item chunks at width 2 — the
        // smallest dispatch that actually spawns workers. Minimum of a
        // few trials filters scheduler noise.
        let items = [0u8; 2];
        let mut dispatch_ns = u64::MAX;
        for _ in 0..4 {
            let t = std::time::Instant::now();
            with_threads(2, || {
                par_chunks(&items, 1, |_, c| std::hint::black_box(c.len()))
            });
            dispatch_ns = dispatch_ns.min(t.elapsed().as_nanos() as u64);
        }
        // (b) per-element cost of the unit the callers estimate in: one
        // float multiply-add with a streamed operand.
        let n = 1usize << 16;
        let buf: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5 + 1.0).collect();
        let t = std::time::Instant::now();
        let mut acc = 0.0f32;
        for &v in &buf {
            acc += v * 1.000_1;
        }
        std::hint::black_box(acc);
        let elem_ns = (t.elapsed().as_nanos() as f64 / n as f64).max(0.05);
        let break_even = (dispatch_ns as f64 * GATE_WORK_FACTOR as f64 / elem_ns) as u64;
        // Sanity clamp: a mismeasured calibration must never pin every
        // call site serial (upper bound) or make the gate a no-op that
        // parallelizes trivia (lower bound).
        break_even.clamp(1 << 12, 1 << 26)
    })
}

/// The break-even work size (element units) the next [`par_gate`] call on
/// this thread will use: the scoped [`with_par_threshold`] override if
/// set, else the per-process calibration (or `M3D_PAR_THRESHOLD`).
pub fn par_break_even() -> u64 {
    let o = THRESHOLD_OVERRIDE.with(Cell::get);
    if o != u64::MAX {
        o
    } else {
        calibrated_break_even()
    }
}

/// Cost-model gate for adaptive parallel granularity: returns the pool
/// width a call site should use for an operation of `work_elements`
/// estimated element-units (one element-unit ≈ one float multiply-add) —
/// [`num_threads`] when the work amortizes the calibrated dispatch
/// overhead, `1` (serial) otherwise.
///
/// Gating is **bitwise safe by construction**: every `par_*` entry point
/// in this crate produces identical bits at width 1 and width N (chunk
/// boundaries are length-only, reduction is chunk-ordered), so a
/// timing-derived serial/parallel decision can change wall time but never
/// a computed value. The property test `gate_decisions_never_change_bits`
/// pins that down.
///
/// # Examples
///
/// ```
/// let items: Vec<f32> = (0..64).map(|i| i as f32).collect();
/// // Tiny work: run serial rather than paying a pool dispatch.
/// let width = m3d_par::par_gate(items.len() as u64);
/// let out = m3d_par::with_threads(width, || m3d_par::par_map(&items, |&x| x * 2.0));
/// assert_eq!(out.len(), 64);
/// ```
pub fn par_gate(work_elements: u64) -> usize {
    let n = num_threads();
    if n <= 1 || work_elements < par_break_even() {
        1
    } else {
        n
    }
}

/// Runs `f` with the [`par_gate`] break-even pinned to `break_even`
/// element-units on this thread (restored on exit, including on panic).
/// `0` forces every gated call site parallel, `u64::MAX - 1` (or any huge
/// value) forces them serial; the determinism tests use both to prove the
/// decision never changes computed bits.
pub fn with_par_threshold<R>(break_even: u64, f: impl FnOnce() -> R) -> R {
    assert!(
        break_even != u64::MAX,
        "u64::MAX is the no-override sentinel"
    );
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            THRESHOLD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THRESHOLD_OVERRIDE.with(|c| c.replace(break_even)));
    f()
}

/// Typed report of a panic inside a worker closure.
///
/// Returned by the `try_*` entry points ([`try_par_map`],
/// [`try_par_map_init`], [`try_par_chunks`], [`try_par_fold`]), which
/// `catch_unwind` each chunk instead of letting the panic poison the whole
/// run. Sibling chunks always run to completion, and when several chunks
/// panic the error reported is the one with the **smallest chunk index** —
/// so the returned error is deterministic at any thread count, like every
/// other result in this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the (lowest-indexed) chunk whose closure panicked.
    pub chunk: usize,
    /// The panic payload rendered as text (`&str` / `String` payloads are
    /// preserved; anything else becomes a placeholder).
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panic in chunk {}: {}", self.chunk, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a `catch_unwind` payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Per-chunk `[queue_us, exec_us]` timing measured by whichever thread ran
/// the chunk. Queue latency is the gap between the dispatch starting and
/// the chunk starting to execute.
type ChunkTiming = [u64; 2];

/// Records one finished dispatch into `m3d-obs`, on the calling thread,
/// with per-chunk observations folded **in chunk-index order** — the same
/// rule `par_fold` uses for accumulators — so metric aggregation order is
/// a function of the input, never of worker interleaving.
fn record_dispatch(
    threads: usize,
    chunks: usize,
    items: usize,
    call_start: std::time::Instant,
    timings: &[ChunkTiming],
) {
    let wall_us = call_start.elapsed().as_micros() as u64;
    let busy_us: u64 = timings.iter().map(|&[_, exec_us]| exec_us).sum();
    m3d_obs::observe_batch("par.queue_us", timings.iter().map(|&[q, _]| q as f64));
    m3d_obs::observe_batch("par.exec_us", timings.iter().map(|&[_, e]| e as f64));
    m3d_obs::counter("par.calls", 1);
    m3d_obs::counter("par.chunks", chunks as u64);
    m3d_obs::counter("par.items", items as u64);
    // Cumulative wall/busy time and the capacity in use: the telemetry
    // plane diffs these over rolling windows for live pool utilization.
    m3d_obs::counter("par.wall_us", wall_us);
    m3d_obs::counter("par.busy_us", busy_us);
    m3d_obs::counter("par.capacity_us", threads as u64 * wall_us);
    m3d_obs::gauge("par.threads", threads as f64);
    m3d_obs::record_pool(threads, chunks, items, wall_us, busy_us);
}

/// The engine: applies `chunk_fn` to every `chunk_size`-sized chunk of
/// `items` and returns the per-chunk results in chunk order. `init` builds
/// per-worker scratch (once per worker thread; once total when serial).
///
/// When `m3d-obs` recording is enabled, the outermost call also reports
/// per-chunk queue/exec timing and a pool-utilization event. Workers only
/// *measure* timestamps; all recording happens on the calling thread after
/// chunk-order reassembly, so results — and event order — are untouched.
fn chunk_results<T: Sync, S, R: Send>(
    items: &[T],
    chunk_size: usize,
    init: impl Fn() -> S + Sync,
    chunk_fn: impl Fn(&mut S, usize, &[T]) -> R + Sync,
) -> Vec<R> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    let threads = num_threads().min(n_chunks);
    // Nested (in-worker) calls stay invisible to obs: their recording
    // order would depend on which worker ran them.
    let obs_on = m3d_obs::enabled() && !IN_WORKER.with(Cell::get);
    let call_start = std::time::Instant::now();
    if threads <= 1 {
        // Serial fallback: the identical chunk walk, inline.
        let mut scratch = init();
        let mut timings: Vec<ChunkTiming> = Vec::new();
        let out = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, c)| {
                let t0 = std::time::Instant::now();
                let r = chunk_fn(&mut scratch, ci, c);
                if obs_on {
                    let queue_us = t0.duration_since(call_start).as_micros() as u64;
                    timings.push([queue_us, t0.elapsed().as_micros() as u64]);
                }
                r
            })
            .collect();
        if obs_on {
            record_dispatch(1, n_chunks, items.len(), call_start, &timings);
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R, ChunkTiming)>();
    let mut out: Vec<Option<(R, ChunkTiming)>> = Vec::with_capacity(n_chunks);
    out.resize_with(n_chunks, || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, init, chunk_fn) = (&next, &init, &chunk_fn);
            scope.spawn(move || {
                struct WorkerGuard;
                impl Drop for WorkerGuard {
                    fn drop(&mut self) {
                        IN_WORKER.with(|c| c.set(false));
                    }
                }
                IN_WORKER.with(|c| c.set(true));
                let _guard = WorkerGuard;
                let mut scratch = init();
                loop {
                    let ci = next.fetch_add(1, Ordering::Relaxed);
                    if ci >= n_chunks {
                        break;
                    }
                    let lo = ci * chunk_size;
                    let hi = (lo + chunk_size).min(items.len());
                    let t0 = std::time::Instant::now();
                    let r = chunk_fn(&mut scratch, ci, &items[lo..hi]);
                    let timing = if obs_on {
                        let queue_us = t0.duration_since(call_start).as_micros() as u64;
                        [queue_us, t0.elapsed().as_micros() as u64]
                    } else {
                        [0, 0]
                    };
                    if tx.send((ci, r, timing)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Collect while workers run; ends when every sender is dropped.
        for (ci, r, timing) in rx {
            out[ci] = Some((r, timing));
        }
    });
    // A worker panic propagates out of the scope above, so every slot is
    // filled here.
    let mut results = Vec::with_capacity(n_chunks);
    let mut timings: Vec<ChunkTiming> = Vec::with_capacity(if obs_on { n_chunks } else { 0 });
    for slot in out {
        let (r, timing) = slot.expect("every chunk completed");
        results.push(r);
        if obs_on {
            timings.push(timing);
        }
    }
    if obs_on {
        record_dispatch(threads, n_chunks, items.len(), call_start, &timings);
    }
    results
}

/// Fallible engine wrapper: runs the same chunk walk as [`chunk_results`]
/// but catches a panic in `chunk_fn` per chunk. Sibling chunks are
/// unaffected — every chunk still runs — and the error returned is the one
/// from the smallest panicking chunk index, so the outcome (value *or*
/// error) is deterministic at any thread count.
fn try_chunk_results<T: Sync, S, R: Send>(
    items: &[T],
    chunk_size: usize,
    init: impl Fn() -> S + Sync,
    chunk_fn: impl Fn(&mut S, usize, &[T]) -> R + Sync,
) -> Result<Vec<R>, WorkerPanic> {
    let wrapped = chunk_results(items, chunk_size, init, |scratch, ci, c| {
        catch_unwind(AssertUnwindSafe(|| chunk_fn(scratch, ci, c))).map_err(|payload| WorkerPanic {
            chunk: ci,
            message: panic_message(payload),
        })
    });
    // `wrapped` is in chunk order, so the first `Err` has the smallest
    // chunk index. Panics go to the flight recorder here, on the calling
    // thread in chunk order, so dump content never depends on worker
    // interleaving.
    let mut out = Vec::with_capacity(wrapped.len());
    let mut first_err: Option<WorkerPanic> = None;
    for r in wrapped {
        match r {
            Ok(v) => out.push(v),
            Err(p) => {
                m3d_obs::flight_record(
                    "pool",
                    "panic",
                    format!("chunk {}: {}", p.chunk, p.message),
                );
                first_err.get_or_insert(p);
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Order-preserving parallel map: `out[i] = f(&items[i])`.
///
/// Deterministic for pure `f`: the output is identical at any thread
/// count.
///
/// # Panics
///
/// A panic in `f` does **not** abort sibling workers mid-chunk: every
/// other chunk runs to completion, then the panic resumes on the calling
/// thread when the scope joins. Callers that want the panic as a typed
/// error instead should use [`try_par_map`].
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_init(items, || (), |(), item| f(item))
}

/// Fallible [`par_map`]: a panic in `f` becomes a [`WorkerPanic`] carrying
/// the chunk index, instead of unwinding through the caller. All sibling
/// chunks still run; with several panicking chunks the lowest chunk index
/// wins, so the `Err` is deterministic at any thread count.
pub fn try_par_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Result<Vec<R>, WorkerPanic> {
    try_par_map_init(items, || (), |(), item| f(item))
}

/// Order-preserving parallel map with per-worker scratch state.
///
/// `init` runs once per worker thread (once total on the serial path);
/// `f` receives the scratch and one item. The scratch is for *reusable
/// allocations* (e.g. a fault-propagation scratchpad): `f`'s output must
/// not depend on scratch history, or determinism is lost.
pub fn par_map_init<T: Sync, S, R: Send>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    let chunk = default_chunk_size(items.len());
    let per_chunk = chunk_results(items, chunk, init, |scratch, _, c| {
        c.iter().map(|item| f(scratch, item)).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for c in per_chunk {
        out.extend(c);
    }
    out
}

/// Fallible [`par_map_init`]: a panic in `f` becomes a [`WorkerPanic`]
/// carrying the chunk index (the [`default_chunk_size`] chunking, as used
/// by `par_map_init` itself).
pub fn try_par_map_init<T: Sync, S, R: Send>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Result<Vec<R>, WorkerPanic> {
    let chunk = default_chunk_size(items.len());
    let per_chunk = try_chunk_results(items, chunk, init, |scratch, _, c| {
        c.iter().map(|item| f(scratch, item)).collect::<Vec<R>>()
    })?;
    let mut out = Vec::with_capacity(items.len());
    for c in per_chunk {
        out.extend(c);
    }
    Ok(out)
}

/// Splits `0..len` into the [`default_chunk_size`] layout and runs `f` on
/// each index range in parallel; returns one result per range, in range
/// order.
///
/// The range boundaries are a function of `len` only, so for a pure `f`
/// the output is identical at any thread count. This is the row-panel
/// primitive behind the blocked GNN kernels: each panel owns a disjoint
/// range of output rows, computes into private storage, and the panels are
/// reassembled in order.
///
/// # Examples
///
/// ```
/// let sums = m3d_par::par_ranges(10, |r| r.sum::<usize>());
/// let total: usize = sums.into_iter().sum();
/// assert_eq!(total, 45);
/// ```
pub fn par_ranges<R: Send>(len: usize, f: impl Fn(std::ops::Range<usize>) -> R + Sync) -> Vec<R> {
    let chunk = default_chunk_size(len);
    let ranges: Vec<std::ops::Range<usize>> = (0..len)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(len))
        .collect();
    par_map(&ranges, |r| f(r.clone()))
}

/// Applies `f` to fixed `chunk_size`-sized chunks in parallel; returns one
/// result per chunk, in chunk order. `f` receives the chunk index and the
/// chunk slice.
pub fn par_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_size: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    chunk_results(items, chunk_size, || (), |(), ci, c| f(ci, c))
}

/// Fallible [`par_chunks`]: a panic in `f` becomes a [`WorkerPanic`]
/// carrying the index of the chunk that panicked.
pub fn try_par_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_size: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Result<Vec<R>, WorkerPanic> {
    try_chunk_results(items, chunk_size, || (), |(), ci, c| f(ci, c))
}

/// Deterministic parallel fold: each chunk folds its items (in item order,
/// with the global item index) into a fresh accumulator from `acc`; the
/// per-chunk accumulators are then merged **left-to-right in chunk-index
/// order** on the calling thread.
///
/// Because chunk boundaries depend only on `items.len()` and `chunk_size`,
/// and the merge order is fixed, floating-point reductions are bitwise
/// reproducible regardless of thread count. Returns `acc()` for empty
/// input.
pub fn par_fold<T: Sync, A: Send>(
    items: &[T],
    chunk_size: usize,
    acc: impl Fn() -> A + Sync,
    fold: impl Fn(A, usize, &T) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> A {
    let partials = chunk_results(
        items,
        chunk_size,
        || (),
        |(), ci, c| {
            let base = ci * chunk_size;
            let mut a = acc();
            for (off, item) in c.iter().enumerate() {
                a = fold(a, base + off, item);
            }
            a
        },
    );
    let mut it = partials.into_iter();
    let first = match it.next() {
        Some(a) => a,
        None => return acc(),
    };
    it.fold(first, merge)
}

/// Fallible [`par_fold`]: a panic in `fold` becomes a [`WorkerPanic`]
/// carrying the chunk index; the left-to-right merge then never runs.
/// `merge` itself executes on the calling thread outside the pool, so a
/// panic there unwinds normally.
pub fn try_par_fold<T: Sync, A: Send>(
    items: &[T],
    chunk_size: usize,
    acc: impl Fn() -> A + Sync,
    fold: impl Fn(A, usize, &T) -> A + Sync,
    merge: impl Fn(A, A) -> A,
) -> Result<A, WorkerPanic> {
    let partials = try_chunk_results(
        items,
        chunk_size,
        || (),
        |(), ci, c| {
            let base = ci * chunk_size;
            let mut a = acc();
            for (off, item) in c.iter().enumerate() {
                a = fold(a, base + off, item);
            }
            a
        },
    )?;
    let mut it = partials.into_iter();
    let first = match it.next() {
        Some(a) => a,
        None => return Ok(acc()),
    };
    Ok(it.fold(first, merge))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let want: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = with_threads(threads, || par_map(&items, |&x| x * 3 + 1));
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn float_fold_is_bitwise_reproducible() {
        // A sum whose value genuinely depends on association order.
        let xs: Vec<f32> = (0..10_000)
            .map(|i| ((i * 2654435761_usize) as f32).sin() * 1e3)
            .collect();
        let run = |threads: usize| {
            with_threads(threads, || {
                par_fold(
                    &xs,
                    default_chunk_size(xs.len()),
                    || 0.0f32,
                    |a, _, &x| a + x,
                    |a, b| a + b,
                )
            })
        };
        let reference = run(1).to_bits();
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(run(threads).to_bits(), reference, "threads = {threads}");
        }
    }

    #[test]
    fn fold_indices_are_global() {
        let items = vec![1u64; 100];
        let sum_idx = with_threads(4, || {
            par_fold(&items, 7, || 0u64, |a, i, _| a + i as u64, |a, b| a + b)
        });
        assert_eq!(sum_idx, (0..100).sum::<u64>());
    }

    #[test]
    fn chunks_see_fixed_boundaries() {
        let items: Vec<u8> = vec![0; 103];
        for threads in [1, 5] {
            let sizes = with_threads(threads, || par_chunks(&items, 10, |ci, c| (ci, c.len())));
            assert_eq!(sizes.len(), 11);
            assert!(sizes.iter().take(10).all(|&(_, n)| n == 10));
            assert_eq!(sizes[10], (10, 3));
        }
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // init must run at most `threads` times (exactly once when serial).
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = with_threads(3, || {
            par_map_init(
                &items,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u32>::new()
                },
                |scratch, &x| {
                    scratch.push(x);
                    x
                },
            )
        });
        assert_eq!(out, items);
        assert!(inits.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn nested_calls_run_serially() {
        let items: Vec<usize> = (0..8).collect();
        let inner: Vec<usize> = (0..4).collect();
        let got = with_threads(4, || {
            par_map(&items, |&x| {
                assert_eq!(num_threads(), 1, "nested calls must be serial");
                par_map(&inner, |&y| x * 10 + y)
            })
        });
        assert_eq!(got[7], vec![70, 71, 72, 73]);
        // The guard resets: top-level calls parallelize again.
        assert!(num_threads() >= 1);
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert!(par_chunks(&empty, 4, |_, c| c.len()).is_empty());
        let folded = par_fold(&empty, 4, || 42u32, |a, _, _| a, |a, _| a);
        assert_eq!(folded, 42);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |&x| {
                    assert!(x != 40, "boom");
                    x
                })
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn panicking_chunk_does_not_abort_siblings() {
        // Satellite guarantee: a panic in one chunk never cancels work in
        // sibling chunks. Every item outside the panicking chunk must have
        // been processed, whichever of `par_map` (panic propagates at scope
        // join) or `try_par_map` (typed error) the caller used.
        let items: Vec<usize> = (0..64).collect();
        let chunk = default_chunk_size(items.len()); // 1 → chunk == item
        assert_eq!(chunk, 1);
        let processed = AtomicUsize::new(0);
        let result = with_threads(4, || {
            try_par_map(&items, |&x| {
                if x == 9 {
                    panic!("chaos: injected worker panic");
                }
                processed.fetch_add(1, Ordering::Relaxed);
                x
            })
        });
        let err = result.expect_err("the injected panic must surface as Err");
        assert_eq!(err.chunk, 9);
        assert!(err.message.contains("injected worker panic"), "{err}");
        assert_eq!(
            processed.load(Ordering::Relaxed),
            items.len() - 1,
            "all sibling chunks ran to completion"
        );
    }

    #[test]
    fn try_error_is_deterministic_across_thread_counts() {
        // Several chunks panic; the reported chunk index must always be
        // the smallest, at any thread count.
        let items: Vec<usize> = (0..256).collect();
        for threads in [1, 2, 4, 8] {
            let err = with_threads(threads, || {
                try_par_map(&items, |&x| {
                    assert!(x % 50 != 3, "boom at {x}");
                    x
                })
            })
            .expect_err("must fail");
            // 256 items → chunk size 4; first failing item is 3 → chunk 0.
            assert_eq!(err.chunk, 0, "threads = {threads}");
        }
    }

    #[test]
    fn try_variants_match_plain_ones_on_success() {
        let items: Vec<u64> = (0..300).collect();
        let ok = try_par_map(&items, |&x| x * 7).expect("no panic");
        assert_eq!(ok, par_map(&items, |&x| x * 7));
        let folded = try_par_fold(
            &items,
            default_chunk_size(items.len()),
            || 0u64,
            |a, _, &x| a + x,
            |a, b| a + b,
        )
        .expect("no panic");
        assert_eq!(folded, (0..300).sum::<u64>());
        let chunks = try_par_chunks(&items, 32, |ci, c| (ci, c.len())).expect("no panic");
        assert_eq!(chunks, par_chunks(&items, 32, |ci, c| (ci, c.len())));
        let empty: Vec<u64> = Vec::new();
        assert_eq!(try_par_map(&empty, |&x| x), Ok(Vec::new()));
        assert_eq!(
            try_par_fold(&empty, 4, || 5u64, |a, _, _| a, |a, b| a + b),
            Ok(5)
        );
    }

    #[test]
    fn try_par_fold_reports_panicking_chunk() {
        let items: Vec<usize> = (0..100).collect();
        let err = with_threads(3, || {
            try_par_fold(
                &items,
                10,
                || 0usize,
                |a, i, _| {
                    assert!(i != 57, "fold chaos");
                    a + 1
                },
                |a, b| a + b,
            )
        })
        .expect_err("must fail");
        assert_eq!(err.chunk, 5, "item 57 lives in chunk 5 of size 10");
        assert!(err.message.contains("fold chaos"));
    }

    #[test]
    fn worker_panic_displays_chunk_and_message() {
        let e = WorkerPanic {
            chunk: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "worker panic in chunk 3: boom");
    }

    #[test]
    fn default_chunking_is_len_only() {
        assert_eq!(default_chunk_size(0), 1);
        assert_eq!(default_chunk_size(1), 1);
        assert_eq!(default_chunk_size(64), 1);
        assert_eq!(default_chunk_size(65), 2);
        assert_eq!(default_chunk_size(6400), 100);
    }

    #[test]
    fn par_ranges_covers_exactly_and_in_order() {
        for len in [0usize, 1, 3, 64, 65, 200, 6401] {
            let ranges = par_ranges(len, |r| r);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must tile 0..{len} in order");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    fn par_ranges_is_thread_count_invariant() {
        let serial = with_threads(1, || par_ranges(1000, |r| r.sum::<usize>()));
        let wide = with_threads(8, || par_ranges(1000, |r| r.sum::<usize>()));
        assert_eq!(serial, wide);
    }

    #[test]
    fn gate_decisions_never_change_bits() {
        // The satellite contract: forcing the gate serial and forcing it
        // parallel must produce bitwise-identical results, because both
        // sides of the decision share chunk boundaries and merge order.
        let xs: Vec<f32> = (0..5000)
            .map(|i| ((i * 2654435761_usize) as f32).sin() * 1e3)
            .collect();
        let run = |break_even: u64| {
            with_par_threshold(break_even, || {
                let width = par_gate(xs.len() as u64);
                with_threads(width.max(1), || {
                    par_fold(
                        &xs,
                        default_chunk_size(xs.len()),
                        || 0.0f32,
                        |a, _, &x| a + x,
                        |a, b| a + b,
                    )
                })
            })
        };
        let serial = with_threads(4, || run(u64::MAX - 1));
        let parallel = with_threads(4, || run(0));
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn gate_respects_threshold_and_width() {
        with_threads(4, || {
            with_par_threshold(1000, || {
                assert_eq!(par_gate(999), 1, "below break-even stays serial");
                assert_eq!(par_gate(1000), 4, "at break-even goes parallel");
            });
            with_par_threshold(0, || {
                assert_eq!(par_gate(0), 4, "zero threshold always parallel");
            });
        });
        with_threads(1, || {
            with_par_threshold(0, || {
                assert_eq!(par_gate(u64::MAX - 1), 1, "width 1 is always serial");
            });
        });
    }

    #[test]
    fn threshold_override_restores_on_exit() {
        let base = par_break_even();
        with_par_threshold(123, || assert_eq!(par_break_even(), 123));
        assert_eq!(par_break_even(), base);
        let caught = catch_unwind(|| with_par_threshold(7, || panic!("x")));
        assert!(caught.is_err());
        assert_eq!(par_break_even(), base, "override must unwind-restore");
    }

    #[test]
    fn calibration_is_sane_and_stable() {
        let a = calibrated_break_even();
        let b = calibrated_break_even();
        assert_eq!(a, b, "calibration is once per process");
        if std::env::var_os("M3D_PAR_THRESHOLD").is_none() {
            assert!((1 << 12..=1 << 26).contains(&a), "break-even {a} unclamped");
        }
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let base = num_threads();
        with_threads(7, || assert_eq!(num_threads(), 7));
        assert_eq!(num_threads(), base);
        let caught = catch_unwind(|| with_threads(5, || panic!("x")));
        assert!(caught.is_err());
        assert_eq!(num_threads(), base, "override must unwind-restore");
    }
}
