//! Trace-shape determinism: the span/pool event stream recorded around
//! `m3d_par` dispatches must be identical at any pool width — same event
//! count, same order, same span ids and nesting, same chunk/item counts —
//! because all recording happens on the orchestrating thread after
//! chunk-order reassembly. Only wall-clock fields and the worker count
//! may differ between runs.
//!
//! Single `#[test]`: obs state is process-global, so the scenarios run
//! sequentially inside one test function.

use m3d_obs::Event;

/// Structural fingerprint of an event stream: everything except timing
/// and the effective worker count.
fn shape(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .map(|e| match e {
            Event::Span {
                id,
                parent,
                name,
                counters,
                ..
            } => format!("span id={id} parent={parent:?} name={name} counters={counters:?}"),
            Event::Pool {
                in_span,
                chunks,
                items,
                ..
            } => format!("pool in={in_span} chunks={chunks} items={items}"),
            other => format!("unexpected {other:?}"),
        })
        .collect()
}

struct TracedRun {
    shape: Vec<String>,
    events: Vec<Event>,
    calls: u64,
    chunks: u64,
    items: u64,
    exec_samples: u64,
}

fn traced_run(threads: usize) -> TracedRun {
    let data: Vec<u64> = (0..1000).collect();
    m3d_obs::reset();
    m3d_obs::set_enabled(true);
    {
        let mut outer = m3d_obs::span("pipeline");
        {
            let mut inner = m3d_obs::span("sweep");
            let doubled =
                m3d_par::with_threads(threads, || m3d_par::par_map(&data, |&x| x.wrapping_mul(2)));
            inner.add("items", doubled.len() as u64);
        }
        let squared =
            m3d_par::with_threads(threads, || m3d_par::par_map(&data, |&x| x.wrapping_mul(x)));
        outer.add("stages", 2);
        outer.add("items", squared.len() as u64);
    }
    m3d_obs::set_enabled(false);
    let events = m3d_obs::trace_events();
    let reg = m3d_obs::registry_snapshot();
    let run = TracedRun {
        shape: shape(&events),
        events,
        calls: reg.counter_value("par.calls").unwrap_or(0),
        chunks: reg.counter_value("par.chunks").unwrap_or(0),
        items: reg.counter_value("par.items").unwrap_or(0),
        exec_samples: reg.histogram("par.exec_us").map_or(0, |h| h.count()),
    };
    m3d_obs::reset();
    run
}

#[test]
fn trace_shape_is_identical_at_any_pool_width() {
    let serial = traced_run(1);
    let wide = traced_run(4);

    // 1000 items → 63 chunks of 16 across two dispatches.
    assert_eq!(serial.calls, 2, "two par dispatches");
    assert_eq!(serial.items, 2000);
    assert_eq!(serial.chunks, 126);
    assert_eq!(serial.exec_samples, 126, "one exec sample per chunk");

    // Same structure event-for-event: order, ids, nesting, counters.
    assert_eq!(
        serial.shape, wide.shape,
        "trace shape must not depend on pool width"
    );
    assert_eq!(
        (wide.calls, wide.chunks, wide.items, wide.exec_samples),
        (
            serial.calls,
            serial.chunks,
            serial.items,
            serial.exec_samples
        ),
        "registry aggregates must not depend on pool width"
    );

    // Explicit nesting check: completion order is pool(sweep), span sweep,
    // pool(pipeline), span pipeline; sweep's parent is pipeline's id.
    let spans: Vec<(&u64, &Option<u64>, &str)> = serial
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Span {
                id, parent, name, ..
            } => Some((id, parent, name.as_str())),
            _ => None,
        })
        .collect();
    assert_eq!(spans.len(), 2);
    assert_eq!(spans[0].2, "sweep", "inner span completes first");
    assert_eq!(spans[1].2, "pipeline");
    assert_eq!(*spans[1].1, None, "outer span has no parent");
    assert_eq!(
        *spans[0].1,
        Some(*spans[1].0),
        "inner span's parent is the outer span"
    );
    let pool_spans: Vec<&str> = serial
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Pool { in_span, .. } => Some(in_span.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(
        pool_spans,
        ["sweep", "pipeline"],
        "dispatches attribute to the innermost open span"
    );
}
