//! Criterion benchmarks of the deployed pipeline (Fig. 9): `T_ATPG`
//! (diagnosis of one failure log), `T_GNN` (model inference), and
//! `T_update` (candidate pruning and reordering) — the three runtime
//! components of Table IX.

use criterion::{criterion_group, criterion_main, Criterion};

use m3d_dft::ObsMode;
use m3d_diagnosis::{Diagnoser, DiagnosisConfig};
use m3d_fault_localization::{
    generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind, TestEnv,
};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

/// `M3D_QUICK=1` shrinks the design and sample count for smoke runs (CI).
fn scale() -> (Option<usize>, usize) {
    if std::env::var_os("M3D_QUICK").is_some() {
        (Some(400), 10)
    } else {
        (Some(1200), 30)
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let (target, n) = scale();
    let env = TestEnv::build(Benchmark::Tate, DesignConfig::Syn1, target);
    let samples = {
        let fsim = env.fault_sim();
        generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, n, 1)
    };
    let refs: Vec<&DiagSample> = samples.iter().collect();
    let fw = FaultLocalizer::train(&refs, &FrameworkConfig::default());
    let fsim = env.fault_sim();
    let diagnoser = Diagnoser::new(
        &fsim,
        &env.scan,
        ObsMode::Bypass,
        DiagnosisConfig::default(),
    );
    let reports: Vec<_> = samples.iter().map(|s| diagnoser.diagnose(&s.log)).collect();

    c.bench_function("t_atpg_diagnose_one_log", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = &samples[i % samples.len()];
            i += 1;
            diagnoser.diagnose(&s.log)
        });
    });

    c.bench_function("t_gnn_localize_one_chip", |b| {
        let sg = samples
            .iter()
            .find_map(|s| s.subgraph.as_ref())
            .expect("some subgraph");
        b.iter(|| (fw.tier.predict(sg), fw.miv.predict_faulty_mivs(sg)));
    });

    c.bench_function("t_update_prune_reorder_one_report", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let k = i % samples.len();
            i += 1;
            fw.enhance(&env.design, &reports[k], &samples[k])
        });
    });

    c.bench_function("end_to_end_one_failing_chip", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = &samples[i % samples.len()];
            i += 1;
            let report = diagnoser.diagnose(&s.log);
            fw.enhance(&env.design, &report, s)
        });
    });

    c.bench_function("framework_training", |b| {
        b.iter(|| FaultLocalizer::train(&refs, &FrameworkConfig::default()));
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(pipeline);
