//! Criterion micro-benchmarks for the computational kernels behind the
//! paper's runtime analysis (Table IX): logic simulation, fault
//! simulation, heterogeneous-graph construction, back-tracing, and GCN
//! inference.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use m3d_dft::ObsMode;
use m3d_fault_localization::{
    generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind, TestEnv,
};
use m3d_hetgraph::{back_trace, HetGraph};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;
use m3d_tdf::Simulator;

/// `M3D_QUICK=1` shrinks the design and sample count for smoke runs (CI).
fn scale() -> (Option<usize>, usize) {
    if std::env::var_os("M3D_QUICK").is_some() {
        (Some(400), 12)
    } else {
        (Some(1200), 40)
    }
}

fn setup() -> (TestEnv, Vec<DiagSample>, FaultLocalizer) {
    let (target, n) = scale();
    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, target);
    let samples = {
        let fsim = env.fault_sim();
        generate_samples(&env, &fsim, ObsMode::Bypass, InjectionKind::Single, n, 1)
    };
    let refs: Vec<&DiagSample> = samples.iter().collect();
    let fw = FaultLocalizer::train(&refs, &FrameworkConfig::default());
    (env, samples, fw)
}

fn bench_kernels(c: &mut Criterion) {
    let (env, samples, fw) = setup();
    let fsim = env.fault_sim();

    c.bench_function("logic_sim_block_64patterns", |b| {
        let sim = Simulator::new(env.design.netlist());
        let block = &env.test_set.patterns.blocks()[0];
        b.iter(|| sim.run_block(block));
    });

    c.bench_function("fault_sim_full_pattern_set", |b| {
        let faults = env.detected_faults();
        let mut det = fsim.detector();
        let mut i = 0usize;
        b.iter(|| {
            let f = faults[i % faults.len()];
            i += 1;
            fsim.detections(&mut det, &[f])
        });
    });

    c.bench_function("hetgraph_construction", |b| {
        b.iter(|| HetGraph::new(&env.design));
    });

    c.bench_function("back_trace_single_fault_log", |b| {
        let sample = samples
            .iter()
            .find(|s| !s.log.is_empty())
            .expect("non-empty log");
        b.iter(|| back_trace(&env.het, &fsim, &env.scan, &sample.log));
    });

    c.bench_function("tier_predictor_inference", |b| {
        let sg = samples
            .iter()
            .find_map(|s| s.subgraph.as_ref())
            .expect("some subgraph");
        b.iter(|| fw.tier.predict(sg));
    });

    // Use a sub-graph that actually contains MIV nodes, or the model
    // short-circuits and the number is meaningless. Small smoke-scale
    // batches may not produce one; skip the bench then.
    if let Some(sg) = samples
        .iter()
        .filter_map(|s| s.subgraph.as_ref())
        .find(|sg| !sg.miv_nodes.is_empty())
    {
        c.bench_function("miv_pinpointer_inference", |b| {
            b.iter(|| fw.miv.predict_faulty_mivs(sg));
        });
    }

    c.bench_function("sample_generation_one_chip", |b| {
        let fsim2 = env.fault_sim();
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                seed
            },
            |s| generate_samples(&env, &fsim2, ObsMode::Bypass, InjectionKind::Single, 1, s),
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(kernels);
