//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every `src/bin/tableX_*.rs` / `figY_*.rs` binary builds on this module:
//! scenario construction (benchmark × design configuration × observation
//! mode), transferred-framework training exactly as in the paper (Syn-1
//! samples plus two randomly-partitioned netlists), and plain-text table
//! formatting.
//!
//! Scale is controlled by the `M3D_QUICK` environment variable: unset runs
//! the paper-shaped defaults; `M3D_QUICK=1` runs a fast smoke version of
//! every experiment (same code paths, smaller designs and sample counts).

#![warn(missing_docs)]

use m3d_dft::ObsMode;
use m3d_fault_localization::{
    generate_samples, DiagSample, FaultLocalizer, FrameworkConfig, InjectionKind, ModelConfig,
    TestEnv,
};
use m3d_gnn::TrainConfig;
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

/// Experiment scale: design size and dataset sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Gate-count target (`None` = the benchmark's paper-shaped default).
    pub target: Option<usize>,
    /// Training samples drawn *per source netlist* (Syn-1 + 2 augmented).
    pub train_per_netlist: usize,
    /// Test samples per evaluated configuration (the paper uses 750;
    /// scaled here).
    pub test_n: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Scale {
    /// The default paper-shaped scale.
    pub fn full() -> Self {
        Scale {
            target: None,
            train_per_netlist: 120,
            test_n: 80,
            epochs: 60,
        }
    }

    /// The smoke-test scale.
    pub fn quick() -> Self {
        Scale {
            target: Some(400),
            train_per_netlist: 25,
            test_n: 12,
            epochs: 15,
        }
    }

    /// Reads `M3D_QUICK` from the environment.
    pub fn from_env() -> Self {
        if std::env::var_os("M3D_QUICK").is_some() {
            Scale::quick()
        } else {
            Scale::full()
        }
    }

    /// The framework configuration at this scale.
    pub fn framework_config(&self) -> FrameworkConfig {
        FrameworkConfig {
            model: ModelConfig {
                train: TrainConfig {
                    epochs: self.epochs,
                    ..TrainConfig::default()
                },
                ..ModelConfig::default()
            },
            ..FrameworkConfig::default()
        }
    }
}

/// A training corpus: the Syn-1 environment plus augmented environments
/// and the pooled training samples (owned).
pub struct TrainingCorpus {
    /// The Syn-1 environment (kept for runtime analysis).
    pub syn1: TestEnv,
    /// Pooled training samples from Syn-1 + 2 random partitions.
    pub samples: Vec<DiagSample>,
}

/// Builds the paper's transferred training corpus for a benchmark: samples
/// from Syn-1 and from two randomly-partitioned variants of the same
/// netlist (the data-augmentation solution of Section IV).
pub fn transferred_corpus(
    benchmark: Benchmark,
    mode: ObsMode,
    scale: &Scale,
    kind: InjectionKind,
) -> TrainingCorpus {
    let syn1 = TestEnv::build(benchmark, DesignConfig::Syn1, scale.target);
    let mut samples = Vec::new();
    {
        let fsim = syn1.fault_sim();
        samples.extend(generate_samples(
            &syn1,
            &fsim,
            mode,
            kind,
            scale.train_per_netlist,
            11,
        ));
    }
    for k in 0..2u64 {
        let aug = TestEnv::build_augmented(benchmark, k, scale.target);
        let fsim = aug.fault_sim();
        samples.extend(generate_samples(
            &aug,
            &fsim,
            mode,
            kind,
            scale.train_per_netlist,
            21 + k,
        ));
    }
    TrainingCorpus { syn1, samples }
}

/// Trains the transferred framework for a benchmark at the given scale.
pub fn train_transferred(
    benchmark: Benchmark,
    mode: ObsMode,
    scale: &Scale,
) -> (TrainingCorpus, FaultLocalizer) {
    let corpus = transferred_corpus(benchmark, mode, scale, InjectionKind::Single);
    let refs: Vec<&DiagSample> = corpus.samples.iter().collect();
    let fw = FaultLocalizer::train(&refs, &scale.framework_config());
    (corpus, fw)
}

/// Builds the test environment + samples for one configuration.
pub fn test_samples(
    benchmark: Benchmark,
    config: DesignConfig,
    mode: ObsMode,
    scale: &Scale,
) -> (TestEnv, Vec<DiagSample>) {
    let env = TestEnv::build(benchmark, config, scale.target);
    let samples = {
        let fsim = env.fault_sim();
        generate_samples(&env, &fsim, mode, InjectionKind::Single, scale.test_n, 1001)
    };
    (env, samples)
}

/// Formats a percentage like the paper's tables (`98.8%`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats the paper's improvement delta: `(+51.9%)` means the metric
/// shrank from `old` to `new` by 51.9% (smaller is better for resolution
/// and FHI).
pub fn delta_pct(new: f64, old: f64) -> String {
    if old.abs() < 1e-12 {
        return "(n/a)".into();
    }
    format!("({:+.1}%)", (old - new) / old * 100.0)
}

/// Formats `mean (std)` like the paper's resolution/FHI cells.
pub fn mean_std_cell(mean: f64, std: f64) -> String {
    format!("{mean:.1} ({std:.1})")
}

/// Prints a simple aligned table: a header row and data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// One effectiveness cell: every method's quality for a benchmark/config.
pub struct EffectivenessRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Configuration name.
    pub config: &'static str,
    /// Per-method aggregate quality.
    pub eval: m3d_fault_localization::MethodEval,
}

/// Runs the full Tables V–VIII protocol for one observation mode: train the
/// transferred framework per benchmark, evaluate every configuration.
pub fn run_effectiveness(mode: ObsMode, scale: &Scale) -> Vec<EffectivenessRow> {
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let t0 = std::time::Instant::now();
        let (_corpus, fw) = train_transferred(bench, mode, scale);
        eprintln!(
            "[{}] framework trained in {:.1}s (Tp = {:.3})",
            bench.name(),
            t0.elapsed().as_secs_f64(),
            fw.tp_threshold
        );
        for config in DesignConfig::ALL {
            let t1 = std::time::Instant::now();
            let (env, samples) = test_samples(bench, config, mode, scale);
            let fsim = env.fault_sim();
            let eval = m3d_fault_localization::evaluate_methods(&env, &fsim, &fw, mode, &samples);
            eprintln!(
                "[{} {}] {} samples evaluated in {:.1}s",
                bench.name(),
                config.name(),
                samples.len(),
                t1.elapsed().as_secs_f64()
            );
            rows.push(EffectivenessRow {
                bench: bench.name(),
                config: config.name(),
                eval,
            });
        }
    }
    rows
}

/// Prints the paper-style effectiveness tables (VI or VIII) from rows.
pub fn print_effectiveness(title: &str, rows: &[EffectivenessRow]) {
    use m3d_diagnosis::ReportQuality;
    let method_table = |name: &str, get: &dyn Fn(&EffectivenessRow) -> &ReportQuality| {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let atpg = &r.eval.atpg;
                let q = get(r);
                vec![
                    r.bench.to_string(),
                    r.config.to_string(),
                    format!(
                        "{} ({:+.1}%)",
                        pct(q.accuracy),
                        (q.accuracy - atpg.accuracy) * 100.0
                    ),
                    format!(
                        "{} {}",
                        mean_std_cell(q.mean_resolution, q.std_resolution),
                        delta_pct(q.mean_resolution, atpg.mean_resolution)
                    ),
                    format!(
                        "{} {}",
                        mean_std_cell(q.mean_fhi, q.std_fhi),
                        delta_pct(q.mean_fhi, atpg.mean_fhi)
                    ),
                ]
            })
            .collect();
        print_table(
            &format!("{title} — {name}"),
            &[
                "Design",
                "Config",
                "Acc (Δ)",
                "Resolution μ(σ) (Δ)",
                "FHI μ(σ) (Δ)",
            ],
            &table,
        );
    };
    method_table("baseline [11]", &|r| &r.eval.baseline);
    method_table("proposed framework, GNN standalone", &|r| &r.eval.gnn);
    method_table("proposed framework, GNN + [11]", &|r| &r.eval.combined);

    let tier: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bench.to_string(),
                r.config.to_string(),
                pct(r.eval.baseline.tier_localization),
                pct(r.eval.gnn.tier_localization),
            ]
        })
        .collect();
    print_table(
        &format!("{title} — tier-level localization"),
        &["Design", "Config", "[11]", "Proposed"],
        &tier,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.test_n < f.test_n);
        assert!(q.train_per_netlist < f.train_per_netlist);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.988), "98.8%");
        assert_eq!(mean_std_cell(5.25, 5.46), "5.2 (5.5)");
        // Paper convention: improvement of resolution 5.2 -> 2.5 ≈ +51.9%.
        assert_eq!(delta_pct(2.5, 5.2), "(+51.9%)");
        assert_eq!(delta_pct(2.5, 0.0), "(n/a)");
    }
}
