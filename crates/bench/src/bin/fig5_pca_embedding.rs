//! Fig. 5: PCA visualization of sub-graph feature vectors for the Tate
//! benchmark under four design configurations.
//!
//! Prints the 2-D embedding as CSV series (`config,pc1,pc2`) plus
//! per-configuration centroid distances demonstrating the overlap the
//! paper argues for (transferability).
//!
//! Run: `cargo run --release -p m3d-bench --bin fig5_pca_embedding`

use m3d_bench::{test_samples, Scale};
use m3d_dft::ObsMode;
use m3d_gnn::{pca_project, Matrix};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

fn main() {
    let scale = Scale::from_env();
    let mode = ObsMode::Bypass;

    // Feature vector per sample: mean of the sub-graph's node features
    // (the Table II vector averaged over nodes).
    let mut labels: Vec<&'static str> = Vec::new();
    let mut vectors: Vec<Vec<f32>> = Vec::new();
    for config in DesignConfig::ALL {
        let (_env, samples) = test_samples(Benchmark::Tate, config, mode, &scale);
        for s in &samples {
            let Some(sg) = &s.subgraph else { continue };
            labels.push(config.name());
            vectors.push(sg.data.features.col_means());
        }
        eprintln!("[{}] {} samples embedded", config.name(), samples.len());
    }

    let refs: Vec<&[f32]> = vectors.iter().map(Vec::as_slice).collect();
    let data = Matrix::from_rows(&refs);
    let proj = pca_project(&data, 2);

    println!("config,pc1,pc2");
    for (i, label) in labels.iter().enumerate() {
        println!("{label},{:.4},{:.4}", proj[(i, 0)], proj[(i, 1)]);
    }

    // Overlap summary: centroid spread vs within-config spread.
    let mut by_config: std::collections::BTreeMap<&str, Vec<(f32, f32)>> = Default::default();
    for (i, label) in labels.iter().enumerate() {
        by_config
            .entry(label)
            .or_default()
            .push((proj[(i, 0)], proj[(i, 1)]));
    }
    let mut centroids = Vec::new();
    eprintln!("\nconfig         centroid          within-spread");
    for (label, pts) in &by_config {
        let n = pts.len() as f32;
        let cx = pts.iter().map(|p| p.0).sum::<f32>() / n;
        let cy = pts.iter().map(|p| p.1).sum::<f32>() / n;
        let spread = (pts
            .iter()
            .map(|p| (p.0 - cx).powi(2) + (p.1 - cy).powi(2))
            .sum::<f32>()
            / n)
            .sqrt();
        eprintln!("{label:<12} ({cx:>7.3}, {cy:>7.3})   {spread:.3}");
        centroids.push((cx, cy, spread));
    }
    let max_centroid_dist = centroids
        .iter()
        .flat_map(|a| {
            centroids
                .iter()
                .map(move |b| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt())
        })
        .fold(0.0f32, f32::max);
    let mean_spread = centroids.iter().map(|c| c.2).sum::<f32>() / centroids.len() as f32;
    eprintln!(
        "\nmax centroid distance {max_centroid_dist:.3} vs mean within-config \
         spread {mean_spread:.3}: distributions {}",
        if max_centroid_dist < mean_spread {
            "overlap (paper's Fig. 5 conclusion)"
        } else {
            "are partially separated"
        }
    );
}
