//! Thread-scaling benchmark of the parallelized pipeline stages, in two
//! tiers.
//!
//! The **default tier** exercises dataset generation, GNN training, and
//! fault simulation on one mid-size AES build, each timed at one thread
//! and at the configured pool width, with a bit-identity check between
//! the two runs. Each stage is also re-run with `m3d-obs` recording
//! enabled to measure observability overhead and capture the effective
//! worker count from pool events. All stage numbers are also routed
//! through the `m3d-obs` metrics registry, so `BENCH_pipeline.json` and
//! `BENCH_pipeline_metrics.jsonl` report the same values (the JSON
//! writer spot-checks the roundtrip).
//!
//! The **paper-scale tier** (`--paper-scale`) runs the four archetypes
//! the paper diagnoses — AES, Tate, netcard, leon3mp — at published gate
//! counts (98K–338K), timing ATPG, good-machine simulation, sample
//! generation, GNN training, the raw GCN kernels, and per-fault
//! simulation at pool widths {1, N}. It additionally records, per
//! archetype, the compiled-simulator speedup over a per-gate object-walk
//! reference, the blocked-kernel speedup over the retained naive kernels,
//! and the process peak RSS, and asserts every stage is bitwise
//! deterministic across thread counts.
//!
//! Run: `cargo run --release -p m3d-bench --bin bench_pipeline`
//! (`M3D_QUICK=1` for the smoke scale, `M3D_THREADS=N` to pin the pool).
//! Paper tier: `bench_pipeline --paper-scale [--archetype NAME]
//! [--gates-cap N]` — the cap shrinks the sizing target for CI smoke
//! runs. `--partition-budget BYTES` overrides the aggregation partition
//! budget (smaller values force multi-partition plans at smoke scale);
//! the active budget is recorded in the JSON either way.

use std::fmt::Write as _;
use std::time::Instant;

use m3d_dataflow::{ConstProp, StaticProofs};
use m3d_dft::ObsMode;
use m3d_fault_localization::{
    generate_samples, DiagSample, InjectionKind, ModelConfig, TestEnv, TierPredictor,
};
use m3d_gnn::{GcnGraph, Matrix, TrainConfig};
use m3d_netlist::generate::Benchmark;
use m3d_netlist::Netlist;
use m3d_part::DesignConfig;
use m3d_tdf::{
    full_fault_list, generate_patterns, AtpgConfig, Fault, PatternBlock, Simulator, TestSet,
};

struct StageResult {
    name: &'static str,
    secs_1t: f64,
    secs_nt: f64,
    /// Wall time of the pool-width run repeated with obs recording on.
    secs_nt_obs: f64,
    /// Every repetition's wall time at the configured width; the
    /// obs-overhead comparison uses medians over these (a min-vs-min
    /// difference goes negative on noisy hosts, which is how the old
    /// −20% overhead readings happened).
    secs_nt_reps: Vec<f64>,
    secs_nt_obs_reps: Vec<f64>,
    /// Largest worker count any dispatch in this stage actually used
    /// (`min(pool width, chunks)`), read back from obs pool events.
    effective_threads: usize,
    throughput_nt: f64,
    unit: &'static str,
    deterministic: bool,
}

impl StageResult {
    /// `None` when the configured pool width is 1: the "1t" and "nt"
    /// runs are then the same configuration, and their wall-time ratio
    /// is timer noise, not a speedup.
    fn speedup(&self, configured: usize) -> Option<f64> {
        if configured <= 1 || self.secs_nt <= 0.0 {
            None
        } else {
            Some(self.secs_1t / self.secs_nt)
        }
    }

    /// Speedup per effective worker: 1.0 is perfect scaling, and values
    /// well under `1/effective_threads`-per-thread mean the fan-out is
    /// paying more in dispatch than it earns.
    fn scaling_efficiency(&self, configured: usize) -> Option<f64> {
        self.speedup(configured)
            .map(|s| s / self.effective_threads.max(1) as f64)
    }

    /// Relative cost of enabling tracing + metrics on the pool-width
    /// run: median-of-reps against median-of-reps, so one lucky or
    /// unlucky scheduler slice doesn't swing the sign.
    fn obs_overhead_pct(&self) -> f64 {
        let nt = median_of(&self.secs_nt_reps);
        if nt > 0.0 {
            100.0 * (median_of(&self.secs_nt_obs_reps) - nt) / nt
        } else {
            0.0
        }
    }

    /// The run's own timing noise: spread of the unobserved repetitions
    /// relative to their median. An overhead smaller than this floor is
    /// not a measurement.
    fn noise_floor_pct(&self) -> f64 {
        let nt = median_of(&self.secs_nt_reps);
        let min = min_of(&self.secs_nt_reps);
        let max = self
            .secs_nt_reps
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if nt > 0.0 && max.is_finite() {
            100.0 * (max - min) / nt
        } else {
            0.0
        }
    }

    /// Whether the reported overhead is below the run's noise floor
    /// (negative overhead is always noise — observation can't make the
    /// code faster).
    fn obs_noise(&self) -> bool {
        let o = self.obs_overhead_pct();
        o < 0.0 || o.abs() <= self.noise_floor_pct()
    }
}

/// Repetitions per timed variant in the default tier; the minimum wall
/// time is kept for throughput, while the obs-overhead comparison uses
/// the median over all repetitions. The paper tier passes 1: its stages
/// run for seconds each, so a single run is already past timer noise.
const REPS: usize = 5;

fn min_of(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn median_of(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Runs `f` `reps` times and returns the last result plus every
/// repetition's wall time.
fn timed<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Vec<f64>) {
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        times.push(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (out.expect("reps > 0"), times)
}

/// Runs `f` with obs recording enabled on a clean slate and returns the
/// result, every repetition's wall time, and the largest effective
/// worker count among the pool dispatches it issued.
fn timed_with_obs<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Vec<f64>, usize) {
    let mut times = Vec::with_capacity(reps);
    let mut out = None;
    let mut effective = 1;
    for _ in 0..reps {
        m3d_obs::reset();
        m3d_obs::set_enabled(true);
        let t = Instant::now();
        let r = f();
        times.push(t.elapsed().as_secs_f64());
        m3d_obs::set_enabled(false);
        effective = m3d_obs::trace_events()
            .iter()
            .filter_map(|e| match e {
                m3d_obs::Event::Pool { threads, .. } => Some(*threads),
                _ => None,
            })
            .max()
            .unwrap_or(1);
        m3d_obs::reset();
        out = Some(r);
    }
    (out.expect("reps > 0"), times, effective)
}

/// Times one stage at widths {1, configured} plus an obs-recorded run,
/// checking the three results for equality. Returns the pool-width
/// result alongside the bookkeeping.
fn stage<R>(
    name: &'static str,
    reps: usize,
    configured: usize,
    items: f64,
    unit: &'static str,
    eq: impl Fn(&R, &R) -> bool,
    f: impl Fn(usize) -> R,
) -> (R, StageResult) {
    let (r_1t, times_1t) = timed(reps, || f(1));
    let (r_nt, times_nt) = timed(reps, || f(configured));
    let (r_obs, times_obs, effective_threads) = timed_with_obs(reps, || f(configured));
    let deterministic = eq(&r_1t, &r_nt) && eq(&r_nt, &r_obs);
    let secs_nt = min_of(&times_nt);
    let result = StageResult {
        name,
        secs_1t: min_of(&times_1t),
        secs_nt,
        secs_nt_obs: min_of(&times_obs),
        secs_nt_reps: times_nt,
        secs_nt_obs_reps: times_obs,
        effective_threads,
        throughput_nt: items / secs_nt.max(1e-12),
        unit,
        deterministic,
    };
    (r_nt, result)
}

fn gauge_of(reg: &m3d_obs::Registry, name: &str) -> f64 {
    reg.gauge_value(name)
        .unwrap_or_else(|| panic!("gauge {name} missing from registry"))
}

/// Process peak RSS in MB from `/proc/self/status` (`VmHWM`). This is a
/// process-lifetime high-water mark: in a multi-archetype run the value
/// recorded for each archetype is the peak *so far*, monotone across the
/// sequence. `None` off Linux.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Reference good-machine frame evaluation that re-walks the gate
/// *objects* in topological order — the shape of the pre-compiled
/// simulator. Kept as the baseline for the compiled-array sweep's
/// speedup measurement; the two must agree bitwise.
fn objectwalk_frame(nl: &Netlist, pi: &[u64], state: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut nets = vec![0u64; nl.net_count()];
    for (&g, &w) in nl.inputs().iter().zip(pi) {
        nets[nl.gate(g).output().expect("inputs drive nets").index()] = w;
    }
    for (&g, &w) in nl.flops().iter().zip(state) {
        nets[nl.gate(g).output().expect("flops drive nets").index()] = w;
    }
    for &g in nl.topo_order() {
        let gate = nl.gate(g);
        let words: Vec<u64> = gate.inputs().iter().map(|n| nets[n.index()]).collect();
        nets[gate.output().expect("gates drive nets").index()] = gate.kind().eval(&words);
    }
    let capture = nl
        .flops()
        .iter()
        .map(|&g| nets[nl.gate(g).inputs()[0].index()])
        .collect();
    (nets, capture)
}

/// Two-frame LOC run of the object-walk reference for one block,
/// returning `(capture1, capture2)`.
fn objectwalk_block(nl: &Netlist, block: &PatternBlock) -> (Vec<u64>, Vec<u64>) {
    let (_, capture1) = objectwalk_frame(nl, &block.pi, &block.scan);
    let (_, capture2) = objectwalk_frame(nl, &block.pi, &capture1);
    (capture1, capture2)
}

struct ArchReport {
    name: &'static str,
    gate_target: usize,
    gates: usize,
    flops: usize,
    sites: usize,
    patterns: usize,
    fault_coverage: f64,
    build_secs: f64,
    peak_rss_mb: Option<f64>,
    /// Object-walk reference time / compiled-array time on the same
    /// blocks (bitwise-equal captures asserted).
    compiled_sim_speedup: f64,
    /// Naive GCN kernel chain time / blocked 1-thread chain time
    /// (bitwise-equal gradients asserted).
    kernel_speedup_vs_naive: f64,
    /// Same comparison for the 32-column chain, which dispatches to the
    /// partitioned + SpMM aggregation path at paper scale.
    wide_kernel_speedup_vs_naive: f64,
    /// Aggregate+transpose only, one thread, 32 columns: direct SpMM
    /// streaming the feature matrix from DRAM vs the same kernel run
    /// per cache-resident partition. Isolates the locality win.
    wide_agg_speedup_vs_unpartitioned: f64,
    /// Partition count of the 32-column plan at the active budget.
    partitions: usize,
    stages: Vec<StageResult>,
}

/// The four archetypes of the paper's design matrix with the sizing
/// targets that land the generators at the published gate counts.
const PAPER_SPECS: [(&str, Benchmark, usize, usize); 4] = [
    ("aes", Benchmark::Aes, 64_000, 98_000),
    ("tate", Benchmark::Tate, 130_000, 149_000),
    ("netcard", Benchmark::Netcard, 223_000, 220_000),
    ("leon3mp", Benchmark::Leon3mp, 325_000, 338_000),
];

fn paper_archetype(
    name: &'static str,
    benchmark: Benchmark,
    gate_target: usize,
    configured: usize,
) -> ArchReport {
    eprintln!("paper-scale: building {name} (target {gate_target})...");
    let t = Instant::now();
    let env = TestEnv::build(benchmark, DesignConfig::Syn1, Some(gate_target));
    let build_secs = t.elapsed().as_secs_f64();
    let nl = env.design.netlist();
    let gates = nl.gate_count();
    let flops = nl.flops().len();
    let sites = env.design.sites().len();
    eprintln!(
        "paper-scale: {name} built in {build_secs:.1}s — {gates} gates, {flops} flops, \
         {sites} sites, {} patterns (coverage {:.3})",
        env.test_set.pattern_count(),
        env.test_set.fault_coverage,
    );
    let mut stages = Vec::new();

    // Stage 1: ATPG — the site-grouped bit-parallel sweep fans the
    // undetected sites across the pool against each candidate block.
    let max_patterns = (gates / 2).clamp(256, 4096);
    let ts_eq = |a: &TestSet, b: &TestSet| {
        a.patterns.blocks() == b.patterns.blocks()
            && a.detected == b.detected
            && a.fault_coverage == b.fault_coverage
    };
    let (_, atpg) = stage(
        "atpg",
        1,
        configured,
        2.0 * sites as f64,
        "faults/s",
        ts_eq,
        |threads| {
            m3d_par::with_threads(threads, || {
                generate_patterns(&env.design, &AtpgConfig::new(1, max_patterns))
            })
        },
    );
    stages.push(atpg);

    // Stage 2: good-machine simulation — compiled levelized sweep over
    // the kept pattern blocks, blocks fanned across the pool.
    let sim = Simulator::new(nl);
    let blocks = env.test_set.patterns.blocks();
    let sim_eq = |a: &Vec<m3d_tdf::BlockSim>, b: &Vec<m3d_tdf::BlockSim>| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.f1 == y.f1
                    && x.f2 == y.f2
                    && x.capture1 == y.capture1
                    && x.capture2 == y.capture2
                    && x.lanes == y.lanes
            })
    };
    let (sims_nt, good_sim) = stage(
        "good_sim",
        1,
        configured,
        env.test_set.pattern_count() as f64,
        "patterns/s",
        sim_eq,
        |threads| m3d_par::with_threads(threads, || sim.run_blocks(blocks)),
    );
    stages.push(good_sim);

    // Compiled-vs-objectwalk comparison on a bounded block sample: the
    // object-walk reference re-reads the gate objects per frame, the
    // compiled simulator sweeps flat arrays. Same captures, bit for bit.
    let n_cmp = blocks.len().min(8);
    let (walk_caps, walk_times) = timed(1, || {
        blocks[..n_cmp]
            .iter()
            .map(|b| objectwalk_block(nl, b))
            .collect::<Vec<_>>()
    });
    let (_, compiled_times) = timed(1, || {
        blocks[..n_cmp]
            .iter()
            .map(|b| sim.run_block(b))
            .collect::<Vec<_>>()
    });
    for ((c1, c2), s) in walk_caps.iter().zip(&sims_nt) {
        assert_eq!(c1, &s.capture1, "{name}: objectwalk capture1 diverged");
        assert_eq!(c2, &s.capture2, "{name}: objectwalk capture2 diverged");
    }
    let compiled_sim_speedup = min_of(&walk_times) / min_of(&compiled_times).max(1e-12);

    // Stage 3: diagnosis sample generation (fault injection + failure-log
    // compaction + back-trace) on a small sample count — each sample
    // re-simulates the full pattern set.
    let fsim = env.fault_sim();
    let n_samples = 4;
    let batch_eq = |a: &Vec<DiagSample>, b: &Vec<DiagSample>| {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.injected == y.injected && x.log == y.log)
    };
    let (batch_nt, gen) = stage(
        "sample_generation",
        1,
        configured,
        n_samples as f64,
        "samples/s",
        batch_eq,
        |threads| {
            m3d_par::with_threads(threads, || {
                generate_samples(
                    &env,
                    &fsim,
                    ObsMode::Bypass,
                    InjectionKind::Single,
                    n_samples,
                    7,
                )
            })
        },
    );
    stages.push(gen);

    // Stage 4: GNN training on the trainable samples.
    let trainable: Vec<&DiagSample> = batch_nt.iter().filter(|s| s.tier_trainable()).collect();
    if trainable.is_empty() {
        eprintln!("paper-scale: {name}: no tier-trainable samples, skipping gnn_fit");
    } else {
        let epochs = 5;
        let cfg = ModelConfig {
            train: TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
            ..ModelConfig::default()
        };
        let bits = |t: &TierPredictor| {
            t.model()
                .flat_params()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        };
        let (_, fit) = stage(
            "gnn_fit",
            1,
            configured,
            epochs as f64,
            "epochs/s",
            |a, b| bits(a) == bits(b),
            |threads| m3d_par::with_threads(threads, || TierPredictor::train(&trainable, &cfg)),
        );
        stages.push(fit);
    }

    // Stage 5: raw GCN kernels on the full gate graph — one forward +
    // backward layer chain (aggregate, matmul, t_matmul, matmul_t,
    // aggregate_transpose), blocked/parallel vs the naive references.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for &g in nl.topo_order().iter().chain(nl.inputs()).chain(nl.flops()) {
        for s in nl.fanout_gates(g) {
            edges.push((g.index(), s.index()));
        }
    }
    let gcn = GcnGraph::from_edges(gates, &edges);
    // Warm the partition-plan cache for both feature widths up front:
    // plans are pure one-off artifacts reused across every epoch in
    // steady-state training, and the paper tier times single
    // repetitions, so a cold first construction would be charged to
    // whichever timed run happens to come first (the 1t one).
    let _ = gcn.partition_plan(16);
    let plan32 = gcn.partition_plan(32);
    let partitions = plan32.len();
    let x = Matrix::xavier(gates, 16, 11);
    let w = Matrix::xavier(16, 16, 13);
    let chain = |threads: usize| {
        m3d_par::with_threads(threads, || {
            let a = gcn.aggregate(&x);
            let h = a.matmul(&w);
            let dw = a.t_matmul(&h);
            let dx = h.matmul_t(&w);
            let da = gcn.aggregate_transpose(&dx);
            (dw, da)
        })
    };
    let (naive_grads, naive_times) = timed(1, || {
        let a = gcn.aggregate_naive(&x);
        let h = a.matmul_naive(&w);
        let dw = a.t_matmul_naive(&h);
        let dx = h.matmul_t_naive(&w);
        let da = gcn.aggregate_transpose_naive(&dx);
        (dw, da)
    });
    let (grads_nt, mut kernels) = stage(
        "gnn_kernels",
        1,
        configured,
        gates as f64,
        "nodes/s",
        |a: &(Matrix, Matrix), b: &(Matrix, Matrix)| a == b,
        chain,
    );
    // The blocked chain must also reproduce the naive references bitwise.
    kernels.deterministic = kernels.deterministic && grads_nt == naive_grads;
    let kernel_speedup_vs_naive = min_of(&naive_times) / kernels.secs_1t.max(1e-12);
    stages.push(kernels);

    // Stage 5b: the same chain at 32 columns. At paper scale the feature
    // matrix overflows the partition budget, so `aggregate` dispatches to
    // the cache-resident partitioned + SpMM path (ISSUE 8).
    let xw = Matrix::xavier(gates, 32, 17);
    let ww = Matrix::xavier(32, 32, 19);
    let wide_chain = |threads: usize| {
        m3d_par::with_threads(threads, || {
            let a = gcn.aggregate(&xw);
            let h = a.matmul(&ww);
            let dw = a.t_matmul(&h);
            let dx = h.matmul_t(&ww);
            let da = gcn.aggregate_transpose(&dx);
            (dw, da)
        })
    };
    let (naive_wide, naive_wide_times) = timed(1, || {
        let a = gcn.aggregate_naive(&xw);
        let h = a.matmul_naive(&ww);
        let dw = a.t_matmul_naive(&h);
        let dx = h.matmul_t_naive(&ww);
        let da = gcn.aggregate_transpose_naive(&dx);
        (dw, da)
    });
    let (wide_nt, mut wide) = stage(
        "gnn_kernels_wide",
        1,
        configured,
        gates as f64,
        "nodes/s",
        |a: &(Matrix, Matrix), b: &(Matrix, Matrix)| a == b,
        wide_chain,
    );
    wide.deterministic = wide.deterministic && wide_nt == naive_wide;
    let wide_kernel_speedup_vs_naive = min_of(&naive_wide_times) / wide.secs_1t.max(1e-12);
    stages.push(wide);

    // Aggregation only, one thread each: the unpartitioned path streams
    // the feature matrix straight off the global CSR, the partitioned
    // path runs the identical SpMM kernel per gathered L2-resident
    // scratch block. Same adds in the same order — asserted — so the
    // ratio is purely the cache behaviour.
    let (unpart, unpart_times) = timed(1, || {
        m3d_par::with_threads(1, || {
            (
                gcn.aggregate_unpartitioned(&xw),
                gcn.aggregate_transpose_unpartitioned(&xw),
            )
        })
    });
    let (part, part_times) = timed(1, || {
        m3d_par::with_threads(1, || {
            (
                gcn.aggregate_with_plan(&xw, &plan32),
                gcn.aggregate_transpose_with_plan(&xw, &plan32),
            )
        })
    });
    assert!(
        unpart == part,
        "{name}: partitioned aggregation diverged from the unpartitioned path"
    );
    let wide_agg_speedup_vs_unpartitioned = min_of(&unpart_times) / min_of(&part_times).max(1e-12);

    // Stage 6: per-fault simulation over an even sample of the detected
    // faults (the diagnosis-time workload).
    let mut faults = env.detected_faults();
    if faults.len() > 64 {
        let stride = faults.len().div_ceil(64);
        faults = faults.into_iter().step_by(stride).collect();
    }
    let (_, fsim_stage) = stage(
        "fault_simulation",
        1,
        configured,
        faults.len() as f64,
        "faults/s",
        |a: &Vec<Vec<m3d_tdf::Detection>>, b| a == b,
        |threads| {
            m3d_par::with_threads(threads, || {
                m3d_par::par_map_init(
                    &faults,
                    || fsim.detector(),
                    |det, f| fsim.detections(det, std::slice::from_ref(f)),
                )
            })
        },
    );
    stages.push(fsim_stage);

    ArchReport {
        name,
        gate_target,
        gates,
        flops,
        sites,
        patterns: env.test_set.pattern_count(),
        fault_coverage: env.test_set.fault_coverage,
        build_secs,
        peak_rss_mb: peak_rss_mb(),
        compiled_sim_speedup,
        kernel_speedup_vs_naive,
        wide_kernel_speedup_vs_naive,
        wide_agg_speedup_vs_unpartitioned,
        partitions,
        stages,
    }
}

fn stage_json(s: &StageResult, configured: usize) -> String {
    let speedup = match s.speedup(configured) {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    };
    let efficiency = match s.scaling_efficiency(configured) {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    };
    format!(
        "{{\"name\": \"{}\", \"secs_1t\": {:.6}, \"secs_nt\": {:.6}, \
         \"secs_nt_obs\": {:.6}, \"effective_threads\": {}, \
         \"speedup\": {speedup}, \"scaling_efficiency\": {efficiency}, \
         \"obs_overhead_pct\": {:.2}, \"noise_floor_pct\": {:.2}, \
         \"obs_noise\": {}, \"throughput_nt\": {:.3}, \"unit\": \"{}\", \
         \"deterministic\": {}}}",
        s.name,
        s.secs_1t,
        s.secs_nt,
        s.secs_nt_obs,
        s.effective_threads,
        s.obs_overhead_pct(),
        s.noise_floor_pct(),
        s.obs_noise(),
        s.throughput_nt,
        s.unit,
        s.deterministic,
    )
}

fn print_stage_table(stages: &[StageResult], configured: usize) {
    for s in stages {
        let speedup = match s.speedup(configured) {
            Some(x) => format!("{x:>5.2}x"),
            None => "  n/a ".to_string(),
        };
        let eff = match s.scaling_efficiency(configured) {
            Some(x) => format!("{x:>4.2}"),
            None => " n/a".to_string(),
        };
        // An overhead below the run's own rep-to-rep spread (negative
        // included) is noise, and is always labelled as such.
        let obs = if s.obs_noise() {
            format!("{:>+5.1}% (noise)", s.obs_overhead_pct())
        } else {
            format!("{:>+5.1}%", s.obs_overhead_pct())
        };
        println!(
            "{:<18} 1t {:>8.3}s  {}t {:>8.3}s  speedup {speedup}  scal-eff {eff}  \
             obs {obs}  eff-threads {}  {:>10.1} {}  deterministic: {}",
            s.name,
            s.secs_1t,
            configured,
            s.secs_nt,
            s.effective_threads,
            s.throughput_nt,
            s.unit,
            s.deterministic,
        );
    }
}

fn paper_tier(configured: usize, host: usize, arch_filter: Option<&str>, gates_cap: Option<usize>) {
    let specs: Vec<_> = PAPER_SPECS
        .iter()
        .filter(|(n, ..)| arch_filter.is_none_or(|f| f == *n))
        .collect();
    assert!(
        !specs.is_empty(),
        "unknown --archetype; expected one of aes, tate, netcard, leon3mp"
    );
    let mut reports = Vec::new();
    for &&(name, benchmark, target, _published) in &specs {
        let target = gates_cap.map_or(target, |cap| target.min(cap));
        let report = paper_archetype(name, benchmark, target, configured);
        println!(
            "\n== {name}: {} gates, {} patterns, coverage {:.3}, build {:.1}s, \
             peak RSS {} MB, compiled-sim {:.2}x, kernels-vs-naive {:.2}x, \
             wide-kernels-vs-naive {:.2}x, wide-agg-vs-unpartitioned {:.2}x \
             ({} partitions) ==",
            report.gates,
            report.patterns,
            report.fault_coverage,
            report.build_secs,
            report
                .peak_rss_mb
                .map_or("n/a".to_string(), |m| format!("{m:.0}")),
            report.compiled_sim_speedup,
            report.kernel_speedup_vs_naive,
            report.wide_kernel_speedup_vs_naive,
            report.wide_agg_speedup_vs_unpartitioned,
            report.partitions,
        );
        print_stage_table(&report.stages, configured);
        reports.push(report);
    }

    // Route the numbers through the metrics registry and snapshot them to
    // the JSONL sidecar, as in the default tier.
    m3d_obs::reset();
    m3d_obs::set_enabled(true);
    for r in &reports {
        let p = format!("bench.paper.{}", r.name);
        m3d_obs::counter(&format!("{p}.gates"), r.gates as u64);
        m3d_obs::counter(&format!("{p}.patterns"), r.patterns as u64);
        m3d_obs::gauge(&format!("{p}.build_secs"), r.build_secs);
        m3d_obs::gauge(&format!("{p}.fault_coverage"), r.fault_coverage);
        m3d_obs::gauge(&format!("{p}.compiled_sim_speedup"), r.compiled_sim_speedup);
        m3d_obs::gauge(
            &format!("{p}.kernel_speedup_vs_naive"),
            r.kernel_speedup_vs_naive,
        );
        m3d_obs::gauge(
            &format!("{p}.wide_kernel_speedup_vs_naive"),
            r.wide_kernel_speedup_vs_naive,
        );
        m3d_obs::gauge(
            &format!("{p}.wide_agg_speedup_vs_unpartitioned"),
            r.wide_agg_speedup_vs_unpartitioned,
        );
        m3d_obs::counter(&format!("{p}.partitions"), r.partitions as u64);
        if let Some(m) = r.peak_rss_mb {
            m3d_obs::gauge(&format!("{p}.peak_rss_mb"), m);
        }
        for s in &r.stages {
            m3d_obs::gauge(&format!("{p}.{}.secs_1t", s.name), s.secs_1t);
            m3d_obs::gauge(&format!("{p}.{}.secs_nt", s.name), s.secs_nt);
            m3d_obs::gauge(&format!("{p}.{}.throughput_nt", s.name), s.throughput_nt);
            if let Some(x) = s.speedup(configured) {
                m3d_obs::gauge(&format!("{p}.{}.speedup", s.name), x);
            }
            if let Some(x) = s.scaling_efficiency(configured) {
                m3d_obs::gauge(&format!("{p}.{}.scaling_efficiency", s.name), x);
            }
            m3d_obs::counter(
                &format!("{p}.{}.effective_threads", s.name),
                s.effective_threads as u64,
            );
        }
    }
    let reg = m3d_obs::registry_snapshot();
    let mut metrics_jsonl = String::new();
    for e in reg.events() {
        let _ = writeln!(metrics_jsonl, "{}", e.render_line());
    }
    std::fs::write("BENCH_pipeline_metrics.jsonl", &metrics_jsonl)
        .expect("write BENCH_pipeline_metrics.jsonl");
    m3d_obs::set_enabled(false);
    m3d_obs::reset();

    let all_ok = reports
        .iter()
        .all(|r| r.stages.iter().all(|s| s.deterministic));
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"tier\": \"paper_scale\",");
    let _ = writeln!(json, "  \"host_threads\": {host},");
    let _ = writeln!(json, "  \"configured_threads\": {configured},");
    let _ = writeln!(json, "  \"oversubscribed\": {},", configured > host);
    let _ = writeln!(
        json,
        "  \"partition_budget\": {},",
        m3d_gnn::partition_budget()
    );
    let _ = writeln!(
        json,
        "  \"peak_rss_note\": \"peak_rss_mb is the process high-water mark, \
         monotone across archetypes in a multi-archetype run\","
    );
    if let Some(cap) = gates_cap {
        let _ = writeln!(json, "  \"gates_cap\": {cap},");
    }
    let _ = writeln!(json, "  \"archetypes\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"gate_target\": {},", r.gate_target);
        let _ = writeln!(json, "      \"gates\": {},", r.gates);
        let _ = writeln!(json, "      \"flops\": {},", r.flops);
        let _ = writeln!(json, "      \"sites\": {},", r.sites);
        let _ = writeln!(json, "      \"patterns\": {},", r.patterns);
        let _ = writeln!(json, "      \"fault_coverage\": {:.6},", r.fault_coverage);
        let _ = writeln!(json, "      \"build_secs\": {:.3},", r.build_secs);
        let _ = writeln!(
            json,
            "      \"peak_rss_mb\": {},",
            r.peak_rss_mb
                .map_or("null".to_string(), |m| format!("{m:.1}"))
        );
        let _ = writeln!(
            json,
            "      \"compiled_sim_speedup\": {:.3},",
            r.compiled_sim_speedup
        );
        let _ = writeln!(
            json,
            "      \"kernel_speedup_vs_naive\": {:.3},",
            r.kernel_speedup_vs_naive
        );
        let _ = writeln!(
            json,
            "      \"wide_kernel_speedup_vs_naive\": {:.3},",
            r.wide_kernel_speedup_vs_naive
        );
        let _ = writeln!(
            json,
            "      \"wide_agg_speedup_vs_unpartitioned\": {:.3},",
            r.wide_agg_speedup_vs_unpartitioned
        );
        let _ = writeln!(json, "      \"partitions\": {},", r.partitions);
        let _ = writeln!(json, "      \"stages\": [");
        for (j, s) in r.stages.iter().enumerate() {
            let c = if j + 1 < r.stages.len() { "," } else { "" };
            let _ = writeln!(json, "        {}{c}", stage_json(s, configured));
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"all_deterministic\": {all_ok}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");

    assert!(all_ok, "parallel results diverged from serial results");
    if configured > 1 {
        for r in &reports {
            let max_eff = r
                .stages
                .iter()
                .map(|s| s.effective_threads)
                .max()
                .unwrap_or(1);
            assert!(
                max_eff > 1,
                "{}: no stage dispatched more than one worker at pool width {configured}",
                r.name
            );
        }
    }
    println!("\nwrote BENCH_pipeline.json (tier: paper_scale) and BENCH_pipeline_metrics.jsonl");
}

fn default_tier(quick: bool, configured: usize, host: usize) {
    let (target, n_samples, epochs, fault_cap) = if quick {
        (Some(400), 12, 10, 200)
    } else {
        (Some(1200), 40, 30, 1500)
    };

    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, target);
    let fsim = env.fault_sim();
    let mut stages = Vec::new();

    // Stage 1: dataset generation (wave-parallel fault sim + back-trace).
    let batch_eq = |a: &Vec<DiagSample>, b: &Vec<DiagSample>| {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.injected == y.injected && x.log == y.log)
    };
    let (batch_nt, gen) = stage(
        "sample_generation",
        REPS,
        configured,
        n_samples as f64,
        "samples/s",
        batch_eq,
        |threads| {
            m3d_par::with_threads(threads, || {
                generate_samples(
                    &env,
                    &fsim,
                    ObsMode::Bypass,
                    InjectionKind::Single,
                    n_samples,
                    7,
                )
            })
        },
    );
    stages.push(gen);

    // Stage 2: GNN training (per-sample gradients fan across the pool).
    let trainable: Vec<&DiagSample> = batch_nt.iter().filter(|s| s.tier_trainable()).collect();
    let cfg = ModelConfig {
        train: TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
        ..ModelConfig::default()
    };
    let bits = |t: &TierPredictor| {
        t.model()
            .flat_params()
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>()
    };
    let (_, fit) = stage(
        "gnn_fit",
        REPS,
        configured,
        epochs as f64,
        "epochs/s",
        |a, b| bits(a) == bits(b),
        |threads| m3d_par::with_threads(threads, || TierPredictor::train(&trainable, &cfg)),
    );
    stages.push(fit);

    // Stage 3: fault simulation (per-fault sweep with per-worker scratch).
    let mut faults = env.detected_faults();
    faults.truncate(fault_cap);
    let (_, fsim_stage) = stage(
        "fault_simulation",
        REPS,
        configured,
        faults.len() as f64,
        "faults/s",
        |a: &Vec<Vec<m3d_tdf::Detection>>, b| a == b,
        |threads| {
            m3d_par::with_threads(threads, || {
                m3d_par::par_map_init(
                    &faults,
                    || fsim.detector(),
                    |det, f| fsim.detections(det, std::slice::from_ref(f)),
                )
            })
        },
    );
    stages.push(fsim_stage);

    // Stage 4 (unthreaded comparison): dataflow fault-sim pruning. Sites
    // the static analysis proves untestable are dropped before the sweep;
    // the pruned sweep must reproduce every surviving fault's detection
    // signature bit-for-bit, and the full sweep must confirm the proofs by
    // finding no detections at any pruned fault.
    let mut all_faults = full_fault_list(&env.design);
    if all_faults.len() > 4 * fault_cap {
        // Sample evenly rather than truncating: the site table is laid out
        // by object kind, so a prefix would bias the pruning rate.
        let stride = all_faults.len().div_ceil(4 * fault_cap);
        all_faults = all_faults.into_iter().step_by(stride).collect();
    }
    let (proofs, proof_times) = timed(REPS, || {
        let cp = ConstProp::compute(env.design.netlist());
        StaticProofs::compute(&env.design, &cp)
    });
    let proof_secs = min_of(&proof_times);
    let skip_site = proofs.prunable_sites();
    let pruned_faults: Vec<Fault> = all_faults
        .iter()
        .copied()
        .filter(|f| !skip_site[f.site.index()])
        .collect();
    let sweep_list = |list: &[Fault]| {
        m3d_par::with_threads(configured, || {
            m3d_par::par_map_init(
                list,
                || fsim.detector(),
                |det, f| fsim.detections(det, std::slice::from_ref(f)),
            )
        })
    };
    let t = Instant::now();
    let full_dets = sweep_list(&all_faults);
    let full_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let pruned_dets = sweep_list(&pruned_faults);
    let pruned_secs = t.elapsed().as_secs_f64();
    let mut survivors = pruned_dets.iter();
    let signatures_equal = all_faults.iter().zip(&full_dets).all(|(f, d)| {
        if skip_site[f.site.index()] {
            d.is_empty() // a proven-untestable fault must never detect
        } else {
            survivors.next() == Some(d)
        }
    }) && survivors.next().is_none();
    let n_pruned = all_faults.len() - pruned_faults.len();
    println!(
        "fault_sim_pruning  {} faults, {} proven untestable ({:.1}%), \
         full {:.3}s vs pruned {:.3}s (+{:.3}s proof), signatures equal: {}",
        all_faults.len(),
        n_pruned,
        100.0 * n_pruned as f64 / all_faults.len().max(1) as f64,
        full_secs,
        pruned_secs,
        proof_secs,
        signatures_equal,
    );
    assert!(
        signatures_equal,
        "pruned sweep changed a detectable fault's signature"
    );

    // Route every stage number through the metrics registry: the JSON and
    // the metrics JSONL below are both rendered from this one snapshot, in
    // the registry's deterministic (alphabetical) event order.
    m3d_obs::reset();
    m3d_obs::set_enabled(true);
    for s in &stages {
        m3d_obs::gauge(&format!("bench.{}.secs_1t", s.name), s.secs_1t);
        m3d_obs::gauge(&format!("bench.{}.secs_nt", s.name), s.secs_nt);
        m3d_obs::gauge(&format!("bench.{}.secs_nt_obs", s.name), s.secs_nt_obs);
        m3d_obs::gauge(
            &format!("bench.{}.obs_overhead_pct", s.name),
            s.obs_overhead_pct(),
        );
        m3d_obs::gauge(&format!("bench.{}.throughput_nt", s.name), s.throughput_nt);
        m3d_obs::gauge(
            &format!("bench.{}.noise_floor_pct", s.name),
            s.noise_floor_pct(),
        );
        if let Some(x) = s.speedup(configured) {
            m3d_obs::gauge(&format!("bench.{}.speedup", s.name), x);
        }
        if let Some(x) = s.scaling_efficiency(configured) {
            m3d_obs::gauge(&format!("bench.{}.scaling_efficiency", s.name), x);
        }
        m3d_obs::counter(
            &format!("bench.{}.effective_threads", s.name),
            s.effective_threads as u64,
        );
    }
    m3d_obs::counter(
        "bench.fault_sim_pruning.faults_total",
        all_faults.len() as u64,
    );
    m3d_obs::counter("bench.fault_sim_pruning.faults_pruned", n_pruned as u64);
    m3d_obs::counter(
        "bench.fault_sim_pruning.faults_simulated",
        pruned_faults.len() as u64,
    );
    m3d_obs::gauge("bench.fault_sim_pruning.proof_secs", proof_secs);
    m3d_obs::gauge("bench.fault_sim_pruning.full_secs", full_secs);
    m3d_obs::gauge("bench.fault_sim_pruning.pruned_secs", pruned_secs);
    let reg = m3d_obs::registry_snapshot();
    let mut metrics_jsonl = String::new();
    for e in reg.events() {
        let _ = writeln!(metrics_jsonl, "{}", e.render_line());
    }
    std::fs::write("BENCH_pipeline_metrics.jsonl", &metrics_jsonl)
        .expect("write BENCH_pipeline_metrics.jsonl");
    m3d_obs::set_enabled(false);
    m3d_obs::reset();

    let all_ok = stages.iter().all(|s| s.deterministic);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"tier\": \"default\",");
    let _ = writeln!(json, "  \"host_threads\": {host},");
    let _ = writeln!(json, "  \"configured_threads\": {configured},");
    let _ = writeln!(json, "  \"oversubscribed\": {},", configured > host);
    let _ = writeln!(
        json,
        "  \"partition_budget\": {},",
        m3d_gnn::partition_budget()
    );
    if configured <= 1 {
        let _ = writeln!(
            json,
            "  \"speedup_note\": \"pool width is 1; the 1t and nt runs share one \
             configuration, so per-stage speedup is omitted\","
        );
    }
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"stages\": [");
    for (i, s) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        // Spot-check that the registry roundtrip preserved the numbers
        // the JSON is rendered from.
        let rt = gauge_of(&reg, &format!("bench.{}.secs_nt", s.name));
        assert!(
            (rt - s.secs_nt).abs() <= f64::EPSILON * rt.abs().max(1.0),
            "registry roundtrip drifted for {}",
            s.name
        );
        let _ = writeln!(json, "    {}{comma}", stage_json(s, configured));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"fault_sim_pruning\": {{\"faults_total\": {}, \"faults_pruned\": {}, \
         \"faults_simulated\": {}, \"proof_secs\": {proof_secs:.6}, \
         \"full_secs\": {full_secs:.6}, \"pruned_secs\": {pruned_secs:.6}, \
         \"signatures_equal\": {signatures_equal}}},",
        all_faults.len(),
        n_pruned,
        pruned_faults.len(),
    );
    let _ = writeln!(json, "  \"all_deterministic\": {all_ok}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");

    print_stage_table(&stages, configured);
    assert!(all_ok, "parallel results diverged from serial results");
    println!("wrote BENCH_pipeline.json and BENCH_pipeline_metrics.jsonl");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paper = false;
    let mut arch_filter: Option<String> = None;
    let mut gates_cap: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper-scale" => paper = true,
            "--archetype" => {
                i += 1;
                arch_filter = Some(
                    args.get(i)
                        .unwrap_or_else(|| panic!("--archetype needs a name"))
                        .clone(),
                );
            }
            "--gates-cap" => {
                i += 1;
                gates_cap = Some(
                    args.get(i)
                        .unwrap_or_else(|| panic!("--gates-cap needs a number"))
                        .parse()
                        .expect("--gates-cap must be an integer"),
                );
            }
            "--partition-budget" => {
                i += 1;
                let bytes: usize = args
                    .get(i)
                    .unwrap_or_else(|| panic!("--partition-budget needs a byte count"))
                    .parse()
                    .expect("--partition-budget must be an integer");
                assert!(bytes > 0, "--partition-budget must be positive");
                m3d_gnn::set_partition_budget(bytes);
            }
            other => {
                panic!(
                    "unknown argument {other}; see --paper-scale, --archetype, \
                     --gates-cap, --partition-budget"
                )
            }
        }
        i += 1;
    }

    let quick = std::env::var_os("M3D_QUICK").is_some();
    let configured = m3d_par::num_threads();
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "bench_pipeline: pool width {configured} (host has {host}{}), tier = {}, \
         partition budget {} B",
        if configured > host {
            ", oversubscribed"
        } else {
            ""
        },
        if paper { "paper_scale" } else { "default" },
        m3d_gnn::partition_budget(),
    );
    if paper {
        paper_tier(configured, host, arch_filter.as_deref(), gates_cap);
    } else {
        default_tier(quick, configured, host);
    }
}
