//! Thread-scaling benchmark of the parallelized pipeline stages: dataset
//! generation, GNN training, and fault simulation, each timed at one
//! thread and at the configured pool width, with a bit-identity check
//! between the two runs. Results land in `BENCH_pipeline.json`.
//!
//! Run: `cargo run --release -p m3d-bench --bin bench_pipeline`
//! (`M3D_QUICK=1` for the smoke scale, `M3D_THREADS=N` to pin the pool).

use std::fmt::Write as _;
use std::time::Instant;

use m3d_dft::ObsMode;
use m3d_fault_localization::{
    generate_samples, DiagSample, InjectionKind, ModelConfig, TestEnv, TierPredictor,
};
use m3d_gnn::TrainConfig;
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

struct StageResult {
    name: &'static str,
    secs_1t: f64,
    secs_nt: f64,
    throughput_nt: f64,
    unit: &'static str,
    deterministic: bool,
}

impl StageResult {
    fn speedup(&self) -> f64 {
        if self.secs_nt > 0.0 {
            self.secs_1t / self.secs_nt
        } else {
            0.0
        }
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::var_os("M3D_QUICK").is_some();
    let (target, n_samples, epochs, fault_cap) = if quick {
        (Some(400), 12, 10, 200)
    } else {
        (Some(1200), 40, 30, 1500)
    };
    let pool = m3d_par::num_threads();
    eprintln!("bench_pipeline: pool width {pool}, quick = {quick}");

    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, target);
    let fsim = env.fault_sim();
    let mut stages = Vec::new();

    // Stage 1: dataset generation (wave-parallel fault sim + back-trace).
    let (batch_1t, gen_1t) = timed(|| {
        m3d_par::with_threads(1, || {
            generate_samples(
                &env,
                &fsim,
                ObsMode::Bypass,
                InjectionKind::Single,
                n_samples,
                7,
            )
        })
    });
    let (batch_nt, gen_nt) = timed(|| {
        m3d_par::with_threads(pool, || {
            generate_samples(
                &env,
                &fsim,
                ObsMode::Bypass,
                InjectionKind::Single,
                n_samples,
                7,
            )
        })
    });
    let gen_same = batch_1t.len() == batch_nt.len()
        && batch_1t
            .iter()
            .zip(&batch_nt)
            .all(|(a, b)| a.injected == b.injected && a.log == b.log);
    stages.push(StageResult {
        name: "sample_generation",
        secs_1t: gen_1t,
        secs_nt: gen_nt,
        throughput_nt: batch_nt.len() as f64 / gen_nt.max(1e-12),
        unit: "samples/s",
        deterministic: gen_same,
    });

    // Stage 2: GNN training (per-sample gradients fan across the pool).
    let trainable: Vec<&DiagSample> = batch_1t.iter().filter(|s| s.tier_trainable()).collect();
    let cfg = ModelConfig {
        train: TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
        ..ModelConfig::default()
    };
    let (tier_1t, fit_1t) =
        timed(|| m3d_par::with_threads(1, || TierPredictor::train(&trainable, &cfg)));
    let (tier_nt, fit_nt) =
        timed(|| m3d_par::with_threads(pool, || TierPredictor::train(&trainable, &cfg)));
    let fit_same = tier_1t
        .model()
        .flat_params()
        .iter()
        .map(|p| p.to_bits())
        .eq(tier_nt.model().flat_params().iter().map(|p| p.to_bits()));
    stages.push(StageResult {
        name: "gnn_fit",
        secs_1t: fit_1t,
        secs_nt: fit_nt,
        throughput_nt: epochs as f64 / fit_nt.max(1e-12),
        unit: "epochs/s",
        deterministic: fit_same,
    });

    // Stage 3: fault simulation (per-fault sweep with per-worker scratch).
    let mut faults = env.detected_faults();
    faults.truncate(fault_cap);
    let (dets_1t, fsim_1t) = timed(|| {
        let mut det = fsim.detector();
        faults
            .iter()
            .map(|f| fsim.detections(&mut det, std::slice::from_ref(f)))
            .collect::<Vec<_>>()
    });
    let (dets_nt, fsim_nt) = timed(|| {
        m3d_par::with_threads(pool, || {
            m3d_par::par_map_init(
                &faults,
                || fsim.detector(),
                |det, f| fsim.detections(det, std::slice::from_ref(f)),
            )
        })
    });
    stages.push(StageResult {
        name: "fault_simulation",
        secs_1t: fsim_1t,
        secs_nt: fsim_nt,
        throughput_nt: faults.len() as f64 / fsim_nt.max(1e-12),
        unit: "faults/s",
        deterministic: dets_1t == dets_nt,
    });

    let all_ok = stages.iter().all(|s| s.deterministic);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"host_threads\": {pool},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"stages\": [");
    for (i, s) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"secs_1t\": {:.6}, \"secs_nt\": {:.6}, \
             \"speedup\": {:.3}, \"throughput_nt\": {:.3}, \"unit\": \"{}\", \
             \"deterministic\": {}}}{comma}",
            s.name,
            s.secs_1t,
            s.secs_nt,
            s.speedup(),
            s.throughput_nt,
            s.unit,
            s.deterministic,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"all_deterministic\": {all_ok}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");

    for s in &stages {
        println!(
            "{:<18} 1t {:>8.3}s  {}t {:>8.3}s  speedup {:>5.2}x  {:>10.1} {}  deterministic: {}",
            s.name,
            s.secs_1t,
            pool,
            s.secs_nt,
            s.speedup(),
            s.throughput_nt,
            s.unit,
            s.deterministic,
        );
    }
    assert!(all_ok, "parallel results diverged from serial results");
    println!("wrote BENCH_pipeline.json");
}
