//! Thread-scaling benchmark of the parallelized pipeline stages: dataset
//! generation, GNN training, and fault simulation, each timed at one
//! thread and at the configured pool width, with a bit-identity check
//! between the two runs. Each stage is also re-run with `m3d-obs`
//! recording enabled to measure observability overhead and capture the
//! effective worker count from pool events. All stage numbers are routed
//! through the `m3d-obs` metrics registry before being written out, so
//! `BENCH_pipeline.json` and `BENCH_pipeline_metrics.jsonl` come from one
//! deterministic source.
//!
//! Run: `cargo run --release -p m3d-bench --bin bench_pipeline`
//! (`M3D_QUICK=1` for the smoke scale, `M3D_THREADS=N` to pin the pool).

use std::fmt::Write as _;
use std::time::Instant;

use m3d_dataflow::{ConstProp, StaticProofs};
use m3d_dft::ObsMode;
use m3d_fault_localization::{
    generate_samples, DiagSample, InjectionKind, ModelConfig, TestEnv, TierPredictor,
};
use m3d_gnn::TrainConfig;
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;
use m3d_tdf::{full_fault_list, Fault};

struct StageResult {
    name: &'static str,
    secs_1t: f64,
    secs_nt: f64,
    /// Wall time of the pool-width run repeated with obs recording on.
    secs_nt_obs: f64,
    /// Largest worker count any dispatch in this stage actually used
    /// (`min(pool width, chunks)`), read back from obs pool events.
    effective_threads: usize,
    throughput_nt: f64,
    unit: &'static str,
    deterministic: bool,
}

impl StageResult {
    /// `None` when the configured pool width is 1: the "1t" and "nt"
    /// runs are then the same configuration, and their wall-time ratio
    /// is timer noise, not a speedup.
    fn speedup(&self, configured: usize) -> Option<f64> {
        if configured <= 1 || self.secs_nt <= 0.0 {
            None
        } else {
            Some(self.secs_1t / self.secs_nt)
        }
    }

    /// Relative cost of enabling tracing + metrics on the pool-width run.
    fn obs_overhead_pct(&self) -> f64 {
        if self.secs_nt > 0.0 {
            100.0 * (self.secs_nt_obs - self.secs_nt) / self.secs_nt
        } else {
            0.0
        }
    }
}

/// Repetitions per timed variant; the minimum wall time is kept, which
/// filters scheduler noise out of the obs-overhead comparison.
const REPS: usize = 5;

fn timed<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (out.expect("REPS > 0"), best)
}

/// Runs `f` with obs recording enabled on a clean slate and returns the
/// result, its minimum wall time over [`REPS`] runs, and the largest
/// effective worker count among the pool dispatches it issued.
fn timed_with_obs<R>(mut f: impl FnMut() -> R) -> (R, f64, usize) {
    let mut best = f64::INFINITY;
    let mut out = None;
    let mut effective = 1;
    for _ in 0..REPS {
        m3d_obs::reset();
        m3d_obs::set_enabled(true);
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        m3d_obs::set_enabled(false);
        effective = m3d_obs::trace_events()
            .iter()
            .filter_map(|e| match e {
                m3d_obs::Event::Pool { threads, .. } => Some(*threads),
                _ => None,
            })
            .max()
            .unwrap_or(1);
        m3d_obs::reset();
        out = Some(r);
    }
    (out.expect("REPS > 0"), best, effective)
}

fn gauge_of(reg: &m3d_obs::Registry, name: &str) -> f64 {
    reg.gauge_value(name)
        .unwrap_or_else(|| panic!("gauge {name} missing from registry"))
}

fn main() {
    let quick = std::env::var_os("M3D_QUICK").is_some();
    let (target, n_samples, epochs, fault_cap) = if quick {
        (Some(400), 12, 10, 200)
    } else {
        (Some(1200), 40, 30, 1500)
    };
    let configured = m3d_par::num_threads();
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!("bench_pipeline: pool width {configured} (host has {host}), quick = {quick}");

    let env = TestEnv::build(Benchmark::Aes, DesignConfig::Syn1, target);
    let fsim = env.fault_sim();
    let mut stages = Vec::new();

    // Stage 1: dataset generation (wave-parallel fault sim + back-trace).
    let gen = |threads: usize| {
        m3d_par::with_threads(threads, || {
            generate_samples(
                &env,
                &fsim,
                ObsMode::Bypass,
                InjectionKind::Single,
                n_samples,
                7,
            )
        })
    };
    let (batch_1t, gen_1t) = timed(|| gen(1));
    let (batch_nt, gen_nt) = timed(|| gen(configured));
    let (batch_obs, gen_obs, gen_threads) = timed_with_obs(|| gen(configured));
    let batch_eq = |a: &[DiagSample], b: &[DiagSample]| {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.injected == y.injected && x.log == y.log)
    };
    stages.push(StageResult {
        name: "sample_generation",
        secs_1t: gen_1t,
        secs_nt: gen_nt,
        secs_nt_obs: gen_obs,
        effective_threads: gen_threads,
        throughput_nt: batch_nt.len() as f64 / gen_nt.max(1e-12),
        unit: "samples/s",
        deterministic: batch_eq(&batch_1t, &batch_nt) && batch_eq(&batch_nt, &batch_obs),
    });

    // Stage 2: GNN training (per-sample gradients fan across the pool).
    let trainable: Vec<&DiagSample> = batch_1t.iter().filter(|s| s.tier_trainable()).collect();
    let cfg = ModelConfig {
        train: TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
        ..ModelConfig::default()
    };
    let fit =
        |threads: usize| m3d_par::with_threads(threads, || TierPredictor::train(&trainable, &cfg));
    let (tier_1t, fit_1t) = timed(|| fit(1));
    let (tier_nt, fit_nt) = timed(|| fit(configured));
    let (tier_obs, fit_obs, fit_threads) = timed_with_obs(|| fit(configured));
    let bits = |t: &TierPredictor| {
        t.model()
            .flat_params()
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>()
    };
    let fit_same = bits(&tier_1t) == bits(&tier_nt) && bits(&tier_nt) == bits(&tier_obs);
    stages.push(StageResult {
        name: "gnn_fit",
        secs_1t: fit_1t,
        secs_nt: fit_nt,
        secs_nt_obs: fit_obs,
        effective_threads: fit_threads,
        throughput_nt: epochs as f64 / fit_nt.max(1e-12),
        unit: "epochs/s",
        deterministic: fit_same,
    });

    // Stage 3: fault simulation (per-fault sweep with per-worker scratch).
    let mut faults = env.detected_faults();
    faults.truncate(fault_cap);
    let (dets_1t, fsim_1t) = timed(|| {
        let mut det = fsim.detector();
        faults
            .iter()
            .map(|f| fsim.detections(&mut det, std::slice::from_ref(f)))
            .collect::<Vec<_>>()
    });
    let sweep = |threads: usize| {
        m3d_par::with_threads(threads, || {
            m3d_par::par_map_init(
                &faults,
                || fsim.detector(),
                |det, f| fsim.detections(det, std::slice::from_ref(f)),
            )
        })
    };
    let (dets_nt, fsim_nt) = timed(|| sweep(configured));
    let (dets_obs, fsim_obs, fsim_threads) = timed_with_obs(|| sweep(configured));
    stages.push(StageResult {
        name: "fault_simulation",
        secs_1t: fsim_1t,
        secs_nt: fsim_nt,
        secs_nt_obs: fsim_obs,
        effective_threads: fsim_threads,
        throughput_nt: faults.len() as f64 / fsim_nt.max(1e-12),
        unit: "faults/s",
        deterministic: dets_1t == dets_nt && dets_nt == dets_obs,
    });

    // Stage 4 (unthreaded comparison): dataflow fault-sim pruning. Sites
    // the static analysis proves untestable are dropped before the sweep;
    // the pruned sweep must reproduce every surviving fault's detection
    // signature bit-for-bit, and the full sweep must confirm the proofs by
    // finding no detections at any pruned fault.
    let mut all_faults = full_fault_list(&env.design);
    if all_faults.len() > 4 * fault_cap {
        // Sample evenly rather than truncating: the site table is laid out
        // by object kind, so a prefix would bias the pruning rate.
        let stride = all_faults.len().div_ceil(4 * fault_cap);
        all_faults = all_faults.into_iter().step_by(stride).collect();
    }
    let (proofs, proof_secs) = timed(|| {
        let cp = ConstProp::compute(env.design.netlist());
        StaticProofs::compute(&env.design, &cp)
    });
    let skip_site = proofs.prunable_sites();
    let pruned_faults: Vec<Fault> = all_faults
        .iter()
        .copied()
        .filter(|f| !skip_site[f.site.index()])
        .collect();
    let sweep_list = |list: &[Fault]| {
        m3d_par::with_threads(configured, || {
            m3d_par::par_map_init(
                list,
                || fsim.detector(),
                |det, f| fsim.detections(det, std::slice::from_ref(f)),
            )
        })
    };
    let t = Instant::now();
    let full_dets = sweep_list(&all_faults);
    let full_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let pruned_dets = sweep_list(&pruned_faults);
    let pruned_secs = t.elapsed().as_secs_f64();
    let mut survivors = pruned_dets.iter();
    let signatures_equal = all_faults.iter().zip(&full_dets).all(|(f, d)| {
        if skip_site[f.site.index()] {
            d.is_empty() // a proven-untestable fault must never detect
        } else {
            survivors.next() == Some(d)
        }
    }) && survivors.next().is_none();
    let n_pruned = all_faults.len() - pruned_faults.len();
    println!(
        "fault_sim_pruning  {} faults, {} proven untestable ({:.1}%), \
         full {:.3}s vs pruned {:.3}s (+{:.3}s proof), signatures equal: {}",
        all_faults.len(),
        n_pruned,
        100.0 * n_pruned as f64 / all_faults.len().max(1) as f64,
        full_secs,
        pruned_secs,
        proof_secs,
        signatures_equal,
    );
    assert!(
        signatures_equal,
        "pruned sweep changed a detectable fault's signature"
    );

    // Route every stage number through the metrics registry: the JSON and
    // the metrics JSONL below are both rendered from this one snapshot, in
    // the registry's deterministic (alphabetical) event order.
    m3d_obs::reset();
    m3d_obs::set_enabled(true);
    for s in &stages {
        m3d_obs::gauge(&format!("bench.{}.secs_1t", s.name), s.secs_1t);
        m3d_obs::gauge(&format!("bench.{}.secs_nt", s.name), s.secs_nt);
        m3d_obs::gauge(&format!("bench.{}.secs_nt_obs", s.name), s.secs_nt_obs);
        m3d_obs::gauge(
            &format!("bench.{}.obs_overhead_pct", s.name),
            s.obs_overhead_pct(),
        );
        m3d_obs::gauge(&format!("bench.{}.throughput_nt", s.name), s.throughput_nt);
        if let Some(x) = s.speedup(configured) {
            m3d_obs::gauge(&format!("bench.{}.speedup", s.name), x);
        }
        m3d_obs::counter(
            &format!("bench.{}.effective_threads", s.name),
            s.effective_threads as u64,
        );
    }
    m3d_obs::counter(
        "bench.fault_sim_pruning.faults_total",
        all_faults.len() as u64,
    );
    m3d_obs::counter("bench.fault_sim_pruning.faults_pruned", n_pruned as u64);
    m3d_obs::counter(
        "bench.fault_sim_pruning.faults_simulated",
        pruned_faults.len() as u64,
    );
    m3d_obs::gauge("bench.fault_sim_pruning.proof_secs", proof_secs);
    m3d_obs::gauge("bench.fault_sim_pruning.full_secs", full_secs);
    m3d_obs::gauge("bench.fault_sim_pruning.pruned_secs", pruned_secs);
    let reg = m3d_obs::registry_snapshot();
    let mut metrics_jsonl = String::new();
    for e in reg.events() {
        let _ = writeln!(metrics_jsonl, "{}", e.render_line());
    }
    std::fs::write("BENCH_pipeline_metrics.jsonl", &metrics_jsonl)
        .expect("write BENCH_pipeline_metrics.jsonl");
    m3d_obs::set_enabled(false);
    m3d_obs::reset();

    let all_ok = stages.iter().all(|s| s.deterministic);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"host_threads\": {host},");
    let _ = writeln!(json, "  \"configured_threads\": {configured},");
    if configured <= 1 {
        let _ = writeln!(
            json,
            "  \"speedup_note\": \"pool width is 1; the 1t and nt runs share one \
             configuration, so per-stage speedup is omitted\","
        );
    }
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"stages\": [");
    for (i, s) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        let speedup = match s.speedup(configured) {
            Some(_) => format!(
                "{:.3}",
                gauge_of(&reg, &format!("bench.{}.speedup", s.name))
            ),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"secs_1t\": {:.6}, \"secs_nt\": {:.6}, \
             \"secs_nt_obs\": {:.6}, \"effective_threads\": {}, \
             \"speedup\": {speedup}, \"obs_overhead_pct\": {:.2}, \
             \"throughput_nt\": {:.3}, \"unit\": \"{}\", \
             \"deterministic\": {}}}{comma}",
            s.name,
            gauge_of(&reg, &format!("bench.{}.secs_1t", s.name)),
            gauge_of(&reg, &format!("bench.{}.secs_nt", s.name)),
            gauge_of(&reg, &format!("bench.{}.secs_nt_obs", s.name)),
            s.effective_threads,
            gauge_of(&reg, &format!("bench.{}.obs_overhead_pct", s.name)),
            gauge_of(&reg, &format!("bench.{}.throughput_nt", s.name)),
            s.unit,
            s.deterministic,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"fault_sim_pruning\": {{\"faults_total\": {}, \"faults_pruned\": {}, \
         \"faults_simulated\": {}, \"proof_secs\": {proof_secs:.6}, \
         \"full_secs\": {full_secs:.6}, \"pruned_secs\": {pruned_secs:.6}, \
         \"signatures_equal\": {signatures_equal}}},",
        all_faults.len(),
        n_pruned,
        pruned_faults.len(),
    );
    let _ = writeln!(json, "  \"all_deterministic\": {all_ok}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");

    for s in &stages {
        let speedup = match s.speedup(configured) {
            Some(x) => format!("{x:>5.2}x"),
            None => "  n/a ".to_string(),
        };
        println!(
            "{:<18} 1t {:>8.3}s  {}t {:>8.3}s  speedup {speedup}  obs {:>+5.1}%  \
             eff {}  {:>10.1} {}  deterministic: {}",
            s.name,
            s.secs_1t,
            configured,
            s.secs_nt,
            s.obs_overhead_pct(),
            s.effective_threads,
            s.throughput_nt,
            s.unit,
            s.deterministic,
        );
    }
    assert!(all_ok, "parallel results diverged from serial results");
    println!("wrote BENCH_pipeline.json and BENCH_pipeline_metrics.jsonl");
}
