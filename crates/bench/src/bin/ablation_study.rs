//! Ablation studies for the framework's design choices (DESIGN.md §4).
//!
//! 1. **Data augmentation** (Section IV): train the Tier-predictor on
//!    Syn-1 only vs Syn-1 + two randomly-partitioned netlists, and compare
//!    accuracy on the unseen Syn-2 / Par configurations.
//! 2. **Dummy-buffer oversampling** (Section V-C): train the Classifier
//!    with and without minority-class oversampling and compare the
//!    accuracy loss of the pruning policy.
//! 3. **Transfer learning**: Classifier built on the pre-trained backbone
//!    vs a from-scratch classifier of the same shape.
//!
//! Run: `cargo run --release -p m3d-bench --bin ablation_study`

use m3d_bench::{pct, print_table, test_samples, transferred_corpus, Scale};
use m3d_dft::ObsMode;
use m3d_fault_localization::{
    evaluate_methods, generate_samples, DiagSample, FaultLocalizer, InjectionKind, TestEnv,
    TierPredictor,
};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

fn main() {
    let scale = Scale::from_env();
    let mode = ObsMode::Bypass;
    let bench = Benchmark::Tate;
    let cfg = scale.framework_config();

    // --- Ablation 1: data augmentation ---
    let syn1_env = TestEnv::build(bench, DesignConfig::Syn1, scale.target);
    let syn1_only: Vec<DiagSample> = {
        let fsim = syn1_env.fault_sim();
        generate_samples(
            &syn1_env,
            &fsim,
            mode,
            InjectionKind::Single,
            scale.train_per_netlist * 3,
            11,
        )
    };
    let refs1: Vec<&DiagSample> = syn1_only.iter().collect();
    let tier_plain = TierPredictor::train(&refs1, &cfg.model);

    let corpus = transferred_corpus(bench, mode, &scale, InjectionKind::Single);
    let refs2: Vec<&DiagSample> = corpus.samples.iter().collect();
    let tier_aug = TierPredictor::train(&refs2, &cfg.model);

    let mut rows = Vec::new();
    for config in [DesignConfig::Syn2, DesignConfig::Par] {
        let (_env, test) = test_samples(bench, config, mode, &scale);
        let test_refs: Vec<&DiagSample> = test.iter().collect();
        rows.push(vec![
            config.name().to_string(),
            pct(tier_plain.accuracy(&test_refs)),
            pct(tier_aug.accuracy(&test_refs)),
        ]);
    }
    print_table(
        "Ablation 1: random-partition data augmentation (Tate Tier-predictor)",
        &["Unseen config", "Syn-1 only", "Syn-1 + 2 random partitions"],
        &rows,
    );

    // --- Ablations 2 & 3: Classifier variants, measured end-to-end ---
    // (a) full framework (transfer + oversampling)
    let fw_full = FaultLocalizer::train(&refs2, &cfg);
    // (b) no classifier at all: always prune when confident.
    let mut fw_noclf = fw_full.clone();
    fw_noclf.classifier = None; // policy falls back to reorder-only
                                // (c) prune whenever confident, ignoring the classifier, emulated by a
                                //     very permissive classifier is equivalent to (a) with approval
                                //     forced; measure by lowering Tp to 0 on a clone.
    let mut fw_always = fw_full.clone();
    fw_always.tp_threshold = 0.0;

    let (env, test) = test_samples(bench, DesignConfig::Syn2, mode, &scale);
    let fsim = env.fault_sim();
    let mut rows2 = Vec::new();
    for (name, fw) in [
        ("Tp-gated + Classifier (paper)", &fw_full),
        ("no Classifier (reorder only)", &fw_noclf),
        ("prune always (no gating)", &fw_always),
    ] {
        let eval = evaluate_methods(&env, &fsim, fw, mode, &test);
        rows2.push(vec![
            name.to_string(),
            pct(eval.gnn.accuracy),
            format!("{:.1}", eval.gnn.mean_resolution),
            format!("{:.1}", eval.gnn.mean_fhi),
        ]);
        eprintln!("[{name}] done");
    }
    print_table(
        "Ablation 2/3: confidence gating and the Classifier (Tate Syn-2)",
        &["Policy variant", "Accuracy", "Resolution μ", "FHI μ"],
        &rows2,
    );
    println!(
        "\nExpected shape: 'prune always' gains resolution but loses \
         accuracy; 'reorder only' preserves accuracy but gains little \
         resolution; the paper's gated policy sits in between."
    );
}
