//! Table XI: diagnosis with the individual models of the framework
//! (Section VII-B) — ATPG only, Tier-predictor standalone, MIV-pinpointer
//! standalone, and both — on AES/Syn-1 with the test set augmented by 10%
//! MIV-fault-injected chips.
//!
//! Run: `cargo run --release -p m3d-bench --bin table11_ablation`

use m3d_bench::{mean_std_cell, pct, print_table, test_samples, train_transferred, Scale};
use m3d_dft::ObsMode;
use m3d_diagnosis::{
    miv_equivalent, Candidate, Diagnoser, DiagnosisConfig, DiagnosisReport, QualityAccumulator,
};
use m3d_fault_localization::{generate_samples, prune_and_reorder, InjectionKind};
use m3d_netlist::generate::Benchmark;
use m3d_part::{DesignConfig, M3dDesign};

/// MIV-pinpointer standalone: only move predicted-faulty-MIV-equivalent
/// candidates to the top; no pruning or tier reordering.
fn miv_only(
    design: &M3dDesign,
    report: &DiagnosisReport,
    predicted_mivs: &[u32],
) -> DiagnosisReport {
    let promoted: Vec<Candidate> = report
        .candidates()
        .iter()
        .filter(|c| {
            miv_equivalent(design, c.fault.site).is_some_and(|m| predicted_mivs.contains(&m))
        })
        .copied()
        .collect();
    let rest: Vec<Candidate> = report
        .candidates()
        .iter()
        .filter(|c| {
            !miv_equivalent(design, c.fault.site).is_some_and(|m| predicted_mivs.contains(&m))
        })
        .copied()
        .collect();
    let mut all = promoted;
    all.extend(rest);
    report.with_candidates(all)
}

fn main() {
    let scale = Scale::from_env();
    let mode = ObsMode::Bypass;
    let bench = Benchmark::Aes;

    let (_corpus, fw) = train_transferred(bench, mode, &scale);
    let (env, mut samples) = test_samples(bench, DesignConfig::Syn1, mode, &scale);
    // Augment the test set by 10% with MIV-fault-injected chips.
    let extra = {
        let fsim = env.fault_sim();
        generate_samples(
            &env,
            &fsim,
            mode,
            InjectionKind::MivOnly,
            (scale.test_n / 10).max(1),
            31415,
        )
    };
    samples.extend(extra);

    let fsim = env.fault_sim();
    let diagnoser = Diagnoser::new(&fsim, &env.scan, mode, DiagnosisConfig::default());

    let mut accs: [QualityAccumulator; 4] = Default::default();
    for s in &samples {
        let report = diagnoser.diagnose(&s.log);
        let gt = &s.injected;
        // (0) ATPG only.
        accs[0].add(&report, gt);
        match &s.subgraph {
            None => {
                for acc in accs.iter_mut().skip(1) {
                    acc.add(&report, gt);
                }
            }
            Some(sg) => {
                let tier_pred = fw.tier.predict(sg);
                let mivs = fw.miv.predict_faulty_mivs(sg);
                let approves = fw.classifier.as_ref().is_some_and(|c| c.should_prune(sg));
                // (1) Tier-predictor standalone (no MIV protection).
                let t_only = prune_and_reorder(
                    &env.design,
                    &report,
                    tier_pred,
                    &[],
                    fw.tp_threshold,
                    approves,
                );
                accs[1].add(&t_only.report, gt);
                // (2) MIV-pinpointer standalone.
                accs[2].add(&miv_only(&env.design, &report, &mivs), gt);
                // (3) Both models.
                let both = prune_and_reorder(
                    &env.design,
                    &report,
                    tier_pred,
                    &mivs,
                    fw.tp_threshold,
                    approves,
                );
                accs[3].add(&both.report, gt);
            }
        }
    }

    let names = [
        "ATPG only",
        "Tier-predictor",
        "MIV-pinpointer",
        "Tier + MIV",
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .zip(&accs)
        .map(|(name, acc)| {
            let q = acc.finish();
            vec![
                name.to_string(),
                pct(q.accuracy),
                mean_std_cell(q.mean_resolution, q.std_resolution),
                mean_std_cell(q.mean_fhi, q.std_fhi),
            ]
        })
        .collect();
    print_table(
        "Table XI: standalone-model ablation (AES Syn-1, +10% MIV-fault chips)",
        &["Method", "Accuracy", "Resolution μ(σ)", "FHI μ(σ)"],
        &rows,
    );
}
