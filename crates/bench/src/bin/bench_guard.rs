//! Throughput-regression guard over `BENCH_pipeline.json`.
//!
//! Usage: `bench_guard [slo] <current.json> [<baseline.json>]`
//!
//! With one argument it validates the run's invariants: every stage
//! reported `deterministic: true`, the file says `all_deterministic:
//! true`, and — when the run was configured with more than one pool
//! thread — at least one stage actually dispatched more than one worker
//! (`effective_threads > 1`) and no stage of measurable length ran
//! slower at the configured width than at one thread (the 1.05× rule).
//! The slower-than-serial rule is skipped when the run reports
//! `oversubscribed: true` (pool width above the host's core count):
//! speedup floors on a host that cannot run the workers concurrently
//! compare scheduler interleaving, not the code.
//!
//! With a second argument it additionally compares against the committed
//! baseline: each stage present in both files must reach at least
//! `tolerance × baseline` throughput, and each recorded speedup ratio
//! (`wide_kernel_speedup_vs_naive`, `wide_agg_speedup_vs_unpartitioned`)
//! must reach `tolerance × baseline`. `tolerance` comes from
//! `M3D_BENCH_TOLERANCE` (default 0.25 — a wide band, because CI runners
//! vary several-fold in single-core speed; the guard exists to catch
//! algorithmic regressions, not scheduler noise).
//!
//! The `serve` tier (`BENCH_serve.json`, written by `m3d-diag load`)
//! adds service-level invariants on top: every stage must report zero
//! `crashed_connections` and zero `mismatches` — a single served report
//! that diverges from the offline diagnosis fails the run outright —
//! and, against a baseline, each stage's p99 latency may grow to at
//! most `baseline / tolerance` (the latency mirror of the throughput
//! floor). Serve stages omit `secs_1t`/`secs_nt`, so the
//! slower-than-serial rule exempts them automatically.
//!
//! The `slo` mode (`bench_guard slo <serve.json> [<baseline.json>]`)
//! turns the declarative SLO grammar of DESIGN.md §17 into a CI gate:
//! each serve stage is replayed through [`m3d_obs::slo::evaluate`] with
//! the spec from `M3D_SLO` (default
//! `availability>=0.99,p99_ms<=1000,degraded_frac<=0.95` — wide enough
//! for a chaos run that deliberately sheds). Any burn rate above 1.0
//! fails the run, as does telemetry exporter overhead above 2% of served
//! wall time. Against a baseline, a stage's worst burn may grow by at
//! most `1 / tolerance` — a burn-rate regression fails even while the
//! absolute objective still holds.
//!
//! The parser reads only the fixed line-oriented layout `bench_pipeline`
//! itself writes (one stage object per line, one scalar key per line)
//! and ignores keys it does not know, so adding report fields never
//! breaks an old guard; the workspace deliberately has no JSON
//! dependency.

use std::process::ExitCode;

use m3d_obs::slo::{evaluate, SloInputs, SloSpec};

/// Stages shorter than this at one thread are exempt from the
/// slower-than-serial rule: their wall time is timer noise.
const PENALTY_MIN_SECS: f64 = 0.01;

/// A stage at the configured width may be at most this factor slower
/// than its own one-thread run before the guard fails the run.
const PENALTY_FACTOR: f64 = 1.05;

#[derive(Debug, PartialEq)]
struct StageRow {
    /// `stage` in the default tier, `archetype/stage` in the paper tier.
    key: String,
    throughput: f64,
    effective_threads: u64,
    deterministic: bool,
    /// Wall seconds at one thread / at the configured width. Zero when
    /// the file predates these fields (old baselines stay parseable).
    secs_1t: f64,
    secs_nt: f64,
    /// Serve-tier counters; zero in the offline tiers.
    crashed_connections: u64,
    mismatches: u64,
    /// Serve-tier tail latency; zero in the offline tiers.
    p99_ms: f64,
    /// Serve-tier outcome counts feeding the SLO replay; zero in the
    /// offline tiers.
    completed: u64,
    gave_up: u64,
    deadline_exceeded: u64,
    degraded: u64,
    /// Telemetry exporter overhead as a percentage of served wall time;
    /// zero when the run had no exporter (or predates the field).
    exporter_overhead_pct: f64,
}

#[derive(Debug, Default)]
struct Report {
    /// `"default"`, `"paper_scale"`, or `"serve"`; empty in files that
    /// predate the field.
    tier: String,
    configured_threads: u64,
    all_deterministic: bool,
    /// Pool width above the host's core count; speedup-floor checks are
    /// meaningless there and are skipped.
    oversubscribed: bool,
    stages: Vec<StageRow>,
    /// Named speedup ratios (`archetype/metric`) compared against the
    /// baseline like throughputs are.
    ratios: Vec<(String, f64)>,
}

/// Extracts the value after `"key": ` on `line`, up to the next comma or
/// closing brace.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn str_field(line: &str, key: &str) -> Option<String> {
    Some(field(line, key)?.trim_matches('"').to_string())
}

/// The speedup ratios bench_pipeline records per archetype that the
/// guard holds to the baseline.
const RATIO_KEYS: [&str; 2] = [
    "wide_kernel_speedup_vs_naive",
    "wide_agg_speedup_vs_unpartitioned",
];

/// Parses the fixed format written by `bench_pipeline`. Stage objects
/// occupy one line each; the paper tier nests them under an archetype
/// whose `"name"` appears alone on a preceding line. Unknown keys are
/// ignored.
fn parse_report(text: &str) -> Result<Report, String> {
    let mut report = Report::default();
    let mut arch: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('{') {
            if let Some(v) = str_field(trimmed, "tier") {
                report.tier = v;
            }
        }
        if let Some(v) = field(trimmed, "configured_threads") {
            report.configured_threads =
                v.parse().map_err(|e| format!("configured_threads: {e}"))?;
        }
        if let Some(v) = field(trimmed, "all_deterministic") {
            report.all_deterministic = v == "true";
        }
        if !trimmed.starts_with('{') {
            if let Some(v) = field(trimmed, "oversubscribed") {
                report.oversubscribed = v == "true";
            }
        }
        if trimmed.starts_with("{\"name\":") {
            let stage = str_field(trimmed, "name").ok_or("stage line without name")?;
            let key = match &arch {
                Some(a) => format!("{a}/{stage}"),
                None => stage,
            };
            let secs = |k: &str| -> Result<f64, String> {
                field(trimmed, k).map_or(Ok(0.0), |v| v.parse().map_err(|e| format!("{k}: {e}")))
            };
            let count = |k: &str| -> Result<u64, String> {
                field(trimmed, k).map_or(Ok(0), |v| v.parse().map_err(|e| format!("{k}: {e}")))
            };
            report.stages.push(StageRow {
                key,
                throughput: field(trimmed, "throughput_nt")
                    .ok_or("stage line without throughput_nt")?
                    .parse()
                    .map_err(|e| format!("throughput_nt: {e}"))?,
                effective_threads: field(trimmed, "effective_threads")
                    .ok_or("stage line without effective_threads")?
                    .parse()
                    .map_err(|e| format!("effective_threads: {e}"))?,
                deterministic: field(trimmed, "deterministic") == Some("true"),
                secs_1t: secs("secs_1t")?,
                secs_nt: secs("secs_nt")?,
                crashed_connections: count("crashed_connections")?,
                mismatches: count("mismatches")?,
                p99_ms: secs("p99_ms")?,
                completed: count("completed")?,
                gave_up: count("gave_up")?,
                deadline_exceeded: count("deadline_exceeded")?,
                degraded: count("degraded")?,
                exporter_overhead_pct: secs("exporter_overhead_pct")?,
            });
        } else if trimmed.starts_with("\"name\":") {
            arch = str_field(trimmed, "name");
        } else if let Some(a) = &arch {
            for k in RATIO_KEYS {
                if let Some(v) = field(trimmed, k) {
                    let x: f64 = v.parse().map_err(|e| format!("{k}: {e}"))?;
                    report.ratios.push((format!("{a}/{k}"), x));
                }
            }
        }
    }
    if report.stages.is_empty() {
        return Err("no stage rows found".to_string());
    }
    Ok(report)
}

fn check(current: &Report, baseline: Option<&Report>, tolerance: f64) -> Result<(), String> {
    if !current.all_deterministic {
        return Err("all_deterministic is not true".to_string());
    }
    if let Some(bad) = current.stages.iter().find(|s| !s.deterministic) {
        return Err(format!("stage {} is not deterministic", bad.key));
    }
    if current.tier == "serve" {
        // The chaos invariant, CI-enforced: no clean connection may
        // crash, and no served report may diverge from the offline
        // diagnosis — at any pool width, under any chaos schedule.
        for s in &current.stages {
            if s.crashed_connections > 0 {
                return Err(format!(
                    "stage {}: {} clean connection(s) crashed",
                    s.key, s.crashed_connections
                ));
            }
            if s.mismatches > 0 {
                return Err(format!(
                    "stage {}: {} served report(s) diverged from the offline diagnosis",
                    s.key, s.mismatches
                ));
            }
        }
    }
    if current.configured_threads > 1 && !current.stages.iter().any(|s| s.effective_threads > 1) {
        return Err(format!(
            "configured {} pool threads but no stage dispatched more than one worker",
            current.configured_threads
        ));
    }
    if current.configured_threads > 1 && !current.oversubscribed {
        // On a genuinely multicore host, fanning out must never make a
        // measurable stage slower than its own serial run.
        for s in &current.stages {
            if s.secs_1t >= PENALTY_MIN_SECS && s.secs_nt > PENALTY_FACTOR * s.secs_1t {
                return Err(format!(
                    "stage {}: {:.3}s at {} threads vs {:.3}s serial (> {PENALTY_FACTOR}x)",
                    s.key, s.secs_nt, current.configured_threads, s.secs_1t
                ));
            }
        }
    } else if current.oversubscribed {
        println!("bench_guard: oversubscribed run; speedup-floor checks skipped");
    }
    let Some(base) = baseline else {
        return Ok(());
    };
    let mut compared = 0;
    for b in &base.stages {
        let Some(c) = current.stages.iter().find(|s| s.key == b.key) else {
            return Err(format!("stage {} missing from current run", b.key));
        };
        let floor = tolerance * b.throughput;
        if c.throughput < floor {
            return Err(format!(
                "stage {}: throughput {:.1} below {:.0}% of baseline {:.1}",
                b.key,
                c.throughput,
                100.0 * tolerance,
                b.throughput
            ));
        }
        compared += 1;
        if current.tier == "serve" && b.p99_ms > 0.0 && c.p99_ms > 0.0 {
            // The latency mirror of the throughput floor: the same wide
            // tolerance band, applied as a ceiling.
            let ceiling = b.p99_ms / tolerance;
            if c.p99_ms > ceiling {
                return Err(format!(
                    "stage {}: p99 {:.1}ms above {:.1}ms ({:.0}% band over baseline {:.1}ms)",
                    b.key,
                    c.p99_ms,
                    ceiling,
                    100.0 * tolerance,
                    b.p99_ms
                ));
            }
            compared += 1;
        }
    }
    for (key, b) in &base.ratios {
        let Some((_, c)) = current.ratios.iter().find(|(k, _)| k == key) else {
            return Err(format!("ratio {key} missing from current run"));
        };
        if *c < tolerance * b {
            return Err(format!(
                "ratio {key}: {c:.3} below {:.0}% of baseline {b:.3}",
                100.0 * tolerance
            ));
        }
        compared += 1;
    }
    println!("bench_guard: {compared} metrics within tolerance {tolerance}");
    Ok(())
}

/// Ceiling on the telemetry exporter's self-reported overhead in `slo`
/// mode: the plane must observe the service, not tax it.
const OVERHEAD_MAX_PCT: f64 = 2.0;

/// SLO applied when `M3D_SLO` is unset: wide enough for a chaos run that
/// deliberately overloads and sheds, tight enough that a hung or failing
/// service cannot pass.
const DEFAULT_SLO: &str = "availability>=0.99,p99_ms<=1000,degraded_frac<=0.95";

/// Replays each serve stage through the SLO evaluator. A burn rate above
/// 1.0 on any stage fails; exporter overhead above [`OVERHEAD_MAX_PCT`]
/// fails; against a baseline, a stage's worst burn growing by more than
/// `1 / tolerance` fails even below the absolute ceiling.
fn check_slo(
    current: &Report,
    baseline: Option<&Report>,
    spec: &SloSpec,
    tolerance: f64,
) -> Result<(), String> {
    if current.tier != "serve" {
        return Err(format!(
            "slo mode needs a serve-tier report, got tier {:?}",
            current.tier
        ));
    }
    let burn_of = |s: &StageRow| {
        evaluate(
            spec,
            &SloInputs {
                completed: s.completed,
                failed: s.gave_up + s.crashed_connections + s.deadline_exceeded,
                degraded: s.degraded,
                p99_ms: (s.p99_ms > 0.0).then_some(s.p99_ms),
            },
        )
    };
    let mut checked = 0;
    for s in &current.stages {
        let status = burn_of(s);
        if status.breached() {
            return Err(format!(
                "stage {}: SLO breached (worst burn {:.2}; availability {:?}, p99 {:?}, degraded {:?})",
                s.key,
                status.worst_burn(),
                status.burn_availability,
                status.burn_p99,
                status.burn_degraded
            ));
        }
        if s.exporter_overhead_pct > OVERHEAD_MAX_PCT {
            return Err(format!(
                "stage {}: telemetry exporter overhead {:.2}% above {OVERHEAD_MAX_PCT}%",
                s.key, s.exporter_overhead_pct
            ));
        }
        checked += 1;
        if let Some(base) = baseline {
            let Some(b) = base.stages.iter().find(|b| b.key == s.key) else {
                continue;
            };
            let (cur, was) = (status.worst_burn(), burn_of(b).worst_burn());
            // Burn-rate regression: growing 1/tolerance-fold over the
            // baseline is a fire even while still inside the objective.
            if was > 0.0 && cur > was / tolerance {
                return Err(format!(
                    "stage {}: worst burn {cur:.3} more than {:.0}x baseline {was:.3}",
                    s.key,
                    1.0 / tolerance
                ));
            }
            checked += 1;
        }
    }
    println!(
        "bench_guard: slo `{}` holds over {checked} check(s)",
        spec.render()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let slo_mode = args.first().is_some_and(|a| a == "slo");
    if slo_mode {
        args.remove(0);
    }
    if args.is_empty() || args.len() > 2 {
        eprintln!("usage: bench_guard [slo] <current.json> [<baseline.json>]");
        return ExitCode::FAILURE;
    }
    let tolerance = std::env::var("M3D_BENCH_TOLERANCE")
        .ok()
        .map(|v| v.parse().expect("M3D_BENCH_TOLERANCE must be a number"))
        .unwrap_or(0.25);
    let read = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        parse_report(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    };
    let current = read(&args[0]);
    let baseline = args.get(1).map(|p| read(p));
    let result = if slo_mode {
        let spec_text = std::env::var("M3D_SLO").unwrap_or_else(|_| DEFAULT_SLO.to_string());
        match SloSpec::parse(&spec_text) {
            Ok(spec) => check_slo(&current, baseline.as_ref(), &spec, tolerance),
            Err(e) => Err(format!("M3D_SLO: {e}")),
        }
    } else {
        check(&current, baseline.as_ref(), tolerance)
    };
    match result {
        Ok(()) => {
            println!("bench_guard: OK ({})", args[0]);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_guard: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEFAULT_TIER: &str = r#"{
  "tier": "default",
  "host_threads": 4,
  "configured_threads": 4,
  "oversubscribed": false,
  "partition_budget": 262144,
  "stages": [
    {"name": "gnn_fit", "secs_1t": 0.04, "secs_nt": 0.02, "secs_nt_obs": 0.02, "effective_threads": 4, "speedup": 2.0, "scaling_efficiency": 0.5, "obs_overhead_pct": 1.0, "noise_floor_pct": 2.0, "obs_noise": true, "throughput_nt": 3000.0, "unit": "epochs/s", "deterministic": true},
    {"name": "fault_simulation", "secs_1t": 0.04, "secs_nt": 0.02, "secs_nt_obs": 0.02, "effective_threads": 4, "speedup": 2.0, "scaling_efficiency": 0.5, "obs_overhead_pct": 1.0, "noise_floor_pct": 2.0, "obs_noise": true, "throughput_nt": 150000.0, "unit": "faults/s", "deterministic": true}
  ],
  "all_deterministic": true
}
"#;

    #[test]
    fn parses_and_accepts_a_clean_default_tier() {
        let r = parse_report(DEFAULT_TIER).unwrap();
        assert_eq!(r.configured_threads, 4);
        assert!(!r.oversubscribed);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].key, "gnn_fit");
        assert_eq!(r.stages[0].secs_1t, 0.04);
        assert_eq!(r.stages[1].throughput, 150000.0);
        check(&r, Some(&r), 0.25).unwrap();
    }

    #[test]
    fn unknown_fields_and_missing_optional_fields_are_tolerated() {
        // Future fields on stage and scalar lines must be ignored, and
        // stage rows from reports that predate secs_1t/secs_nt must
        // still parse (they default to zero, exempting the 1.05x rule).
        let text = r#"{
  "tier": "default",
  "configured_threads": 4,
  "frobnication_level": 9,
  "stages": [
    {"name": "gnn_fit", "effective_threads": 4, "novel_metric": 1.5, "throughput_nt": 3000.0, "unit": "epochs/s", "deterministic": true}
  ],
  "all_deterministic": true
}
"#;
        let r = parse_report(text).unwrap();
        assert_eq!(r.stages[0].secs_1t, 0.0);
        assert_eq!(r.stages[0].secs_nt, 0.0);
        check(&r, None, 0.25).unwrap();
    }

    #[test]
    fn paper_tier_stages_are_keyed_by_archetype() {
        let text = r#"{
  "tier": "paper_scale",
  "configured_threads": 4,
  "oversubscribed": false,
  "archetypes": [
    {
      "name": "aes",
      "wide_kernel_speedup_vs_naive": 4.2,
      "wide_agg_speedup_vs_unpartitioned": 1.3,
      "stages": [
        {"name": "atpg", "effective_threads": 4, "throughput_nt": 100.0, "deterministic": true}
      ]
    }
  ],
  "all_deterministic": true
}
"#;
        let r = parse_report(text).unwrap();
        assert_eq!(r.stages[0].key, "aes/atpg");
        assert_eq!(
            r.ratios,
            vec![
                ("aes/wide_kernel_speedup_vs_naive".to_string(), 4.2),
                ("aes/wide_agg_speedup_vs_unpartitioned".to_string(), 1.3),
            ]
        );
        // A regressed ratio in a new run fails against this baseline.
        let mut cur = parse_report(text).unwrap();
        cur.ratios[1].1 = 0.2; // below 0.25 × 1.3
        assert!(check(&cur, Some(&r), 0.25).unwrap_err().contains("ratio"));
    }

    #[test]
    fn flags_throughput_regression_and_lost_determinism() {
        let base = parse_report(DEFAULT_TIER).unwrap();
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        cur.stages[1].throughput = 1000.0; // far below 0.25 × 150000
        assert!(check(&cur, Some(&base), 0.25)
            .unwrap_err()
            .contains("below"));
        cur.stages[1].throughput = 150000.0;
        cur.all_deterministic = false;
        assert!(check(&cur, Some(&base), 0.25).is_err());
    }

    #[test]
    fn flags_serial_fallback_at_configured_width() {
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        for s in &mut cur.stages {
            s.effective_threads = 1;
        }
        assert!(check(&cur, None, 0.25)
            .unwrap_err()
            .contains("no stage dispatched"));
    }

    #[test]
    fn flags_stage_slower_at_width_than_serial() {
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        cur.stages[0].secs_1t = 0.10;
        cur.stages[0].secs_nt = 0.12; // > 1.05 × 0.10 on a multicore host
        assert!(check(&cur, None, 0.25).unwrap_err().contains("serial"));
        // ... but sub-10ms stages are timer noise, not evidence.
        cur.stages[0].secs_1t = 0.005;
        cur.stages[0].secs_nt = 0.009;
        check(&cur, None, 0.25).unwrap();
    }

    const SERVE_TIER: &str = r#"{
  "tier": "serve",
  "configured_threads": 4,
  "clients": 1000,
  "requests_per_client": 2,
  "stages": [
    {"name": "serve_w1", "effective_threads": 1, "throughput_nt": 800.0, "unit": "diagnoses/s", "p50_ms": 20.0, "p99_ms": 40.0, "crashed_connections": 0, "mismatches": 0, "overloaded": 3, "deadline_exceeded": 0, "degraded": 1, "protocol_rejections": 5, "panics_contained": 2, "gave_up": 0, "completed": 2000, "wall_secs": 2.5, "deterministic": true},
    {"name": "serve_w4", "effective_threads": 4, "throughput_nt": 2400.0, "unit": "diagnoses/s", "p50_ms": 8.0, "p99_ms": 15.0, "crashed_connections": 0, "mismatches": 0, "overloaded": 0, "deadline_exceeded": 0, "degraded": 0, "protocol_rejections": 4, "panics_contained": 2, "gave_up": 0, "completed": 2000, "wall_secs": 0.8, "deterministic": true}
  ],
  "all_deterministic": true
}
"#;

    #[test]
    fn serve_tier_parses_and_accepts_a_clean_run() {
        let r = parse_report(SERVE_TIER).unwrap();
        assert_eq!(r.tier, "serve");
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].key, "serve_w1");
        assert_eq!(r.stages[1].p99_ms, 15.0);
        // Serve stages omit secs_1t/secs_nt, so the slower-than-serial
        // rule self-exempts even at configured_threads = 4.
        assert_eq!(r.stages[0].secs_1t, 0.0);
        check(&r, Some(&r), 0.25).unwrap();
    }

    #[test]
    fn serve_tier_fails_on_crashes_and_mismatches() {
        let base = parse_report(SERVE_TIER).unwrap();
        let mut cur = parse_report(SERVE_TIER).unwrap();
        cur.stages[0].crashed_connections = 1;
        assert!(check(&cur, None, 0.25).unwrap_err().contains("crashed"));
        cur.stages[0].crashed_connections = 0;
        cur.stages[1].mismatches = 1;
        // A single diverged report fails even without a baseline — the
        // chaos invariant is unconditional.
        assert!(check(&cur, None, 0.25).unwrap_err().contains("diverged"));
        assert!(check(&cur, Some(&base), 0.25).is_err());
    }

    #[test]
    fn serve_tier_holds_p99_to_the_baseline_ceiling() {
        let base = parse_report(SERVE_TIER).unwrap();
        let mut cur = parse_report(SERVE_TIER).unwrap();
        cur.stages[1].p99_ms = 100.0; // above 15.0 / 0.25 = 60ms
        assert!(check(&cur, Some(&base), 0.25).unwrap_err().contains("p99"));
        cur.stages[1].p99_ms = 55.0; // inside the band
        check(&cur, Some(&base), 0.25).unwrap();
        // Offline tiers never trip the latency ceiling.
        let dbase = parse_report(DEFAULT_TIER).unwrap();
        check(&dbase, Some(&dbase), 0.25).unwrap();
    }

    fn default_slo() -> SloSpec {
        SloSpec::parse(DEFAULT_SLO).unwrap()
    }

    #[test]
    fn slo_mode_parses_outcome_counts_and_accepts_a_clean_run() {
        let r = parse_report(SERVE_TIER).unwrap();
        assert_eq!(r.stages[0].completed, 2000);
        assert_eq!(r.stages[0].gave_up, 0);
        assert_eq!(r.stages[0].deadline_exceeded, 0);
        assert_eq!(r.stages[0].degraded, 1);
        // Reports that predate the exporter default to zero overhead.
        assert_eq!(r.stages[0].exporter_overhead_pct, 0.0);
        check_slo(&r, Some(&r), &default_slo(), 0.25).unwrap();
        // Offline tiers have no outcomes to replay.
        let offline = parse_report(DEFAULT_TIER).unwrap();
        assert!(check_slo(&offline, None, &default_slo(), 0.25)
            .unwrap_err()
            .contains("serve-tier"));
    }

    #[test]
    fn slo_mode_fails_burned_objectives_and_exporter_overhead() {
        let mut cur = parse_report(SERVE_TIER).unwrap();
        cur.stages[0].degraded = 1990; // 99.5% degraded vs the 95% ceiling
        assert!(check_slo(&cur, None, &default_slo(), 0.25)
            .unwrap_err()
            .contains("breached"));
        cur.stages[0].degraded = 1;
        cur.stages[1].exporter_overhead_pct = 3.5; // above the 2% ceiling
        assert!(check_slo(&cur, None, &default_slo(), 0.25)
            .unwrap_err()
            .contains("overhead"));
    }

    #[test]
    fn slo_mode_flags_burn_rate_regressions_inside_the_objective() {
        let base = parse_report(SERVE_TIER).unwrap();
        let mut cur = parse_report(SERVE_TIER).unwrap();
        // p99 40ms → 900ms: burn 0.04 → 0.90, still inside the 1000ms
        // objective but 22x the baseline burn — a fire, not a pass.
        cur.stages[0].p99_ms = 900.0;
        assert!(check_slo(&cur, None, &default_slo(), 0.25).is_ok());
        assert!(check_slo(&cur, Some(&base), &default_slo(), 0.25)
            .unwrap_err()
            .contains("baseline"));
    }

    #[test]
    fn oversubscribed_run_skips_speedup_floor_checks() {
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        cur.stages[0].secs_1t = 0.10;
        cur.stages[0].secs_nt = 0.30; // 4 workers time-slicing one core
        assert!(check(&cur, None, 0.25).is_err());
        cur.oversubscribed = true;
        check(&cur, None, 0.25).unwrap();
    }
}
