//! Throughput-regression guard over `BENCH_pipeline.json`.
//!
//! Usage: `bench_guard <current.json> [<baseline.json>]`
//!
//! With one argument it validates the run's invariants: every stage
//! reported `deterministic: true`, the file says `all_deterministic:
//! true`, and — when the run was configured with more than one pool
//! thread — at least one stage actually dispatched more than one worker
//! (`effective_threads > 1`) and no stage of measurable length ran
//! slower at the configured width than at one thread (the 1.05× rule).
//! The slower-than-serial rule is skipped when the run reports
//! `oversubscribed: true` (pool width above the host's core count):
//! speedup floors on a host that cannot run the workers concurrently
//! compare scheduler interleaving, not the code.
//!
//! With a second argument it additionally compares against the committed
//! baseline: each stage present in both files must reach at least
//! `tolerance × baseline` throughput, and each recorded speedup ratio
//! (`wide_kernel_speedup_vs_naive`, `wide_agg_speedup_vs_unpartitioned`)
//! must reach `tolerance × baseline`. `tolerance` comes from
//! `M3D_BENCH_TOLERANCE` (default 0.25 — a wide band, because CI runners
//! vary several-fold in single-core speed; the guard exists to catch
//! algorithmic regressions, not scheduler noise).
//!
//! The parser reads only the fixed line-oriented layout `bench_pipeline`
//! itself writes (one stage object per line, one scalar key per line)
//! and ignores keys it does not know, so adding report fields never
//! breaks an old guard; the workspace deliberately has no JSON
//! dependency.

use std::process::ExitCode;

/// Stages shorter than this at one thread are exempt from the
/// slower-than-serial rule: their wall time is timer noise.
const PENALTY_MIN_SECS: f64 = 0.01;

/// A stage at the configured width may be at most this factor slower
/// than its own one-thread run before the guard fails the run.
const PENALTY_FACTOR: f64 = 1.05;

#[derive(Debug, PartialEq)]
struct StageRow {
    /// `stage` in the default tier, `archetype/stage` in the paper tier.
    key: String,
    throughput: f64,
    effective_threads: u64,
    deterministic: bool,
    /// Wall seconds at one thread / at the configured width. Zero when
    /// the file predates these fields (old baselines stay parseable).
    secs_1t: f64,
    secs_nt: f64,
}

#[derive(Debug, Default)]
struct Report {
    configured_threads: u64,
    all_deterministic: bool,
    /// Pool width above the host's core count; speedup-floor checks are
    /// meaningless there and are skipped.
    oversubscribed: bool,
    stages: Vec<StageRow>,
    /// Named speedup ratios (`archetype/metric`) compared against the
    /// baseline like throughputs are.
    ratios: Vec<(String, f64)>,
}

/// Extracts the value after `"key": ` on `line`, up to the next comma or
/// closing brace.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn str_field(line: &str, key: &str) -> Option<String> {
    Some(field(line, key)?.trim_matches('"').to_string())
}

/// The speedup ratios bench_pipeline records per archetype that the
/// guard holds to the baseline.
const RATIO_KEYS: [&str; 2] = [
    "wide_kernel_speedup_vs_naive",
    "wide_agg_speedup_vs_unpartitioned",
];

/// Parses the fixed format written by `bench_pipeline`. Stage objects
/// occupy one line each; the paper tier nests them under an archetype
/// whose `"name"` appears alone on a preceding line. Unknown keys are
/// ignored.
fn parse_report(text: &str) -> Result<Report, String> {
    let mut report = Report::default();
    let mut arch: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(v) = field(trimmed, "configured_threads") {
            report.configured_threads =
                v.parse().map_err(|e| format!("configured_threads: {e}"))?;
        }
        if let Some(v) = field(trimmed, "all_deterministic") {
            report.all_deterministic = v == "true";
        }
        if !trimmed.starts_with('{') {
            if let Some(v) = field(trimmed, "oversubscribed") {
                report.oversubscribed = v == "true";
            }
        }
        if trimmed.starts_with("{\"name\":") {
            let stage = str_field(trimmed, "name").ok_or("stage line without name")?;
            let key = match &arch {
                Some(a) => format!("{a}/{stage}"),
                None => stage,
            };
            let secs = |k: &str| -> Result<f64, String> {
                field(trimmed, k).map_or(Ok(0.0), |v| v.parse().map_err(|e| format!("{k}: {e}")))
            };
            report.stages.push(StageRow {
                key,
                throughput: field(trimmed, "throughput_nt")
                    .ok_or("stage line without throughput_nt")?
                    .parse()
                    .map_err(|e| format!("throughput_nt: {e}"))?,
                effective_threads: field(trimmed, "effective_threads")
                    .ok_or("stage line without effective_threads")?
                    .parse()
                    .map_err(|e| format!("effective_threads: {e}"))?,
                deterministic: field(trimmed, "deterministic") == Some("true"),
                secs_1t: secs("secs_1t")?,
                secs_nt: secs("secs_nt")?,
            });
        } else if trimmed.starts_with("\"name\":") {
            arch = str_field(trimmed, "name");
        } else if let Some(a) = &arch {
            for k in RATIO_KEYS {
                if let Some(v) = field(trimmed, k) {
                    let x: f64 = v.parse().map_err(|e| format!("{k}: {e}"))?;
                    report.ratios.push((format!("{a}/{k}"), x));
                }
            }
        }
    }
    if report.stages.is_empty() {
        return Err("no stage rows found".to_string());
    }
    Ok(report)
}

fn check(current: &Report, baseline: Option<&Report>, tolerance: f64) -> Result<(), String> {
    if !current.all_deterministic {
        return Err("all_deterministic is not true".to_string());
    }
    if let Some(bad) = current.stages.iter().find(|s| !s.deterministic) {
        return Err(format!("stage {} is not deterministic", bad.key));
    }
    if current.configured_threads > 1 && !current.stages.iter().any(|s| s.effective_threads > 1) {
        return Err(format!(
            "configured {} pool threads but no stage dispatched more than one worker",
            current.configured_threads
        ));
    }
    if current.configured_threads > 1 && !current.oversubscribed {
        // On a genuinely multicore host, fanning out must never make a
        // measurable stage slower than its own serial run.
        for s in &current.stages {
            if s.secs_1t >= PENALTY_MIN_SECS && s.secs_nt > PENALTY_FACTOR * s.secs_1t {
                return Err(format!(
                    "stage {}: {:.3}s at {} threads vs {:.3}s serial (> {PENALTY_FACTOR}x)",
                    s.key, s.secs_nt, current.configured_threads, s.secs_1t
                ));
            }
        }
    } else if current.oversubscribed {
        println!("bench_guard: oversubscribed run; speedup-floor checks skipped");
    }
    let Some(base) = baseline else {
        return Ok(());
    };
    let mut compared = 0;
    for b in &base.stages {
        let Some(c) = current.stages.iter().find(|s| s.key == b.key) else {
            return Err(format!("stage {} missing from current run", b.key));
        };
        let floor = tolerance * b.throughput;
        if c.throughput < floor {
            return Err(format!(
                "stage {}: throughput {:.1} below {:.0}% of baseline {:.1}",
                b.key,
                c.throughput,
                100.0 * tolerance,
                b.throughput
            ));
        }
        compared += 1;
    }
    for (key, b) in &base.ratios {
        let Some((_, c)) = current.ratios.iter().find(|(k, _)| k == key) else {
            return Err(format!("ratio {key} missing from current run"));
        };
        if *c < tolerance * b {
            return Err(format!(
                "ratio {key}: {c:.3} below {:.0}% of baseline {b:.3}",
                100.0 * tolerance
            ));
        }
        compared += 1;
    }
    println!("bench_guard: {compared} metrics within tolerance {tolerance}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 2 {
        eprintln!("usage: bench_guard <current.json> [<baseline.json>]");
        return ExitCode::FAILURE;
    }
    let tolerance = std::env::var("M3D_BENCH_TOLERANCE")
        .ok()
        .map(|v| v.parse().expect("M3D_BENCH_TOLERANCE must be a number"))
        .unwrap_or(0.25);
    let read = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        parse_report(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    };
    let current = read(&args[0]);
    let baseline = args.get(1).map(|p| read(p));
    match check(&current, baseline.as_ref(), tolerance) {
        Ok(()) => {
            println!("bench_guard: OK ({})", args[0]);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_guard: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEFAULT_TIER: &str = r#"{
  "tier": "default",
  "host_threads": 4,
  "configured_threads": 4,
  "oversubscribed": false,
  "partition_budget": 262144,
  "stages": [
    {"name": "gnn_fit", "secs_1t": 0.04, "secs_nt": 0.02, "secs_nt_obs": 0.02, "effective_threads": 4, "speedup": 2.0, "scaling_efficiency": 0.5, "obs_overhead_pct": 1.0, "noise_floor_pct": 2.0, "obs_noise": true, "throughput_nt": 3000.0, "unit": "epochs/s", "deterministic": true},
    {"name": "fault_simulation", "secs_1t": 0.04, "secs_nt": 0.02, "secs_nt_obs": 0.02, "effective_threads": 4, "speedup": 2.0, "scaling_efficiency": 0.5, "obs_overhead_pct": 1.0, "noise_floor_pct": 2.0, "obs_noise": true, "throughput_nt": 150000.0, "unit": "faults/s", "deterministic": true}
  ],
  "all_deterministic": true
}
"#;

    #[test]
    fn parses_and_accepts_a_clean_default_tier() {
        let r = parse_report(DEFAULT_TIER).unwrap();
        assert_eq!(r.configured_threads, 4);
        assert!(!r.oversubscribed);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].key, "gnn_fit");
        assert_eq!(r.stages[0].secs_1t, 0.04);
        assert_eq!(r.stages[1].throughput, 150000.0);
        check(&r, Some(&r), 0.25).unwrap();
    }

    #[test]
    fn unknown_fields_and_missing_optional_fields_are_tolerated() {
        // Future fields on stage and scalar lines must be ignored, and
        // stage rows from reports that predate secs_1t/secs_nt must
        // still parse (they default to zero, exempting the 1.05x rule).
        let text = r#"{
  "tier": "default",
  "configured_threads": 4,
  "frobnication_level": 9,
  "stages": [
    {"name": "gnn_fit", "effective_threads": 4, "novel_metric": 1.5, "throughput_nt": 3000.0, "unit": "epochs/s", "deterministic": true}
  ],
  "all_deterministic": true
}
"#;
        let r = parse_report(text).unwrap();
        assert_eq!(r.stages[0].secs_1t, 0.0);
        assert_eq!(r.stages[0].secs_nt, 0.0);
        check(&r, None, 0.25).unwrap();
    }

    #[test]
    fn paper_tier_stages_are_keyed_by_archetype() {
        let text = r#"{
  "tier": "paper_scale",
  "configured_threads": 4,
  "oversubscribed": false,
  "archetypes": [
    {
      "name": "aes",
      "wide_kernel_speedup_vs_naive": 4.2,
      "wide_agg_speedup_vs_unpartitioned": 1.3,
      "stages": [
        {"name": "atpg", "effective_threads": 4, "throughput_nt": 100.0, "deterministic": true}
      ]
    }
  ],
  "all_deterministic": true
}
"#;
        let r = parse_report(text).unwrap();
        assert_eq!(r.stages[0].key, "aes/atpg");
        assert_eq!(
            r.ratios,
            vec![
                ("aes/wide_kernel_speedup_vs_naive".to_string(), 4.2),
                ("aes/wide_agg_speedup_vs_unpartitioned".to_string(), 1.3),
            ]
        );
        // A regressed ratio in a new run fails against this baseline.
        let mut cur = parse_report(text).unwrap();
        cur.ratios[1].1 = 0.2; // below 0.25 × 1.3
        assert!(check(&cur, Some(&r), 0.25).unwrap_err().contains("ratio"));
    }

    #[test]
    fn flags_throughput_regression_and_lost_determinism() {
        let base = parse_report(DEFAULT_TIER).unwrap();
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        cur.stages[1].throughput = 1000.0; // far below 0.25 × 150000
        assert!(check(&cur, Some(&base), 0.25)
            .unwrap_err()
            .contains("below"));
        cur.stages[1].throughput = 150000.0;
        cur.all_deterministic = false;
        assert!(check(&cur, Some(&base), 0.25).is_err());
    }

    #[test]
    fn flags_serial_fallback_at_configured_width() {
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        for s in &mut cur.stages {
            s.effective_threads = 1;
        }
        assert!(check(&cur, None, 0.25)
            .unwrap_err()
            .contains("no stage dispatched"));
    }

    #[test]
    fn flags_stage_slower_at_width_than_serial() {
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        cur.stages[0].secs_1t = 0.10;
        cur.stages[0].secs_nt = 0.12; // > 1.05 × 0.10 on a multicore host
        assert!(check(&cur, None, 0.25).unwrap_err().contains("serial"));
        // ... but sub-10ms stages are timer noise, not evidence.
        cur.stages[0].secs_1t = 0.005;
        cur.stages[0].secs_nt = 0.009;
        check(&cur, None, 0.25).unwrap();
    }

    #[test]
    fn oversubscribed_run_skips_speedup_floor_checks() {
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        cur.stages[0].secs_1t = 0.10;
        cur.stages[0].secs_nt = 0.30; // 4 workers time-slicing one core
        assert!(check(&cur, None, 0.25).is_err());
        cur.oversubscribed = true;
        check(&cur, None, 0.25).unwrap();
    }
}
