//! Throughput-regression guard over `BENCH_pipeline.json`.
//!
//! Usage: `bench_guard <current.json> [<baseline.json>]`
//!
//! With one argument it validates the run's invariants: every stage
//! reported `deterministic: true`, the file says `all_deterministic:
//! true`, and — when the run was configured with more than one pool
//! thread — at least one stage actually dispatched more than one worker
//! (`effective_threads > 1`). With a second argument it additionally
//! compares per-stage throughput against the committed baseline: each
//! stage present in both files must reach at least `tolerance ×
//! baseline` throughput, where `tolerance` comes from
//! `M3D_BENCH_TOLERANCE` (default 0.25 — a wide band, because CI runners
//! vary several-fold in single-core speed; the guard exists to catch
//! algorithmic regressions, not scheduler noise).
//!
//! The parser reads only the fixed line-oriented layout `bench_pipeline`
//! itself writes (one stage object per line, one scalar key per line);
//! the workspace deliberately has no JSON dependency.

use std::process::ExitCode;

#[derive(Debug, PartialEq)]
struct StageRow {
    /// `stage` in the default tier, `archetype/stage` in the paper tier.
    key: String,
    throughput: f64,
    effective_threads: u64,
    deterministic: bool,
}

#[derive(Debug, Default)]
struct Report {
    configured_threads: u64,
    all_deterministic: bool,
    stages: Vec<StageRow>,
}

/// Extracts the value after `"key": ` on `line`, up to the next comma or
/// closing brace.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn str_field(line: &str, key: &str) -> Option<String> {
    Some(field(line, key)?.trim_matches('"').to_string())
}

/// Parses the fixed format written by `bench_pipeline`. Stage objects
/// occupy one line each; the paper tier nests them under an archetype
/// whose `"name"` appears alone on a preceding line.
fn parse_report(text: &str) -> Result<Report, String> {
    let mut report = Report::default();
    let mut arch: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(v) = field(trimmed, "configured_threads") {
            report.configured_threads =
                v.parse().map_err(|e| format!("configured_threads: {e}"))?;
        }
        if let Some(v) = field(trimmed, "all_deterministic") {
            report.all_deterministic = v == "true";
        }
        if trimmed.starts_with("{\"name\":") {
            let stage = str_field(trimmed, "name").ok_or("stage line without name")?;
            let key = match &arch {
                Some(a) => format!("{a}/{stage}"),
                None => stage,
            };
            report.stages.push(StageRow {
                key,
                throughput: field(trimmed, "throughput_nt")
                    .ok_or("stage line without throughput_nt")?
                    .parse()
                    .map_err(|e| format!("throughput_nt: {e}"))?,
                effective_threads: field(trimmed, "effective_threads")
                    .ok_or("stage line without effective_threads")?
                    .parse()
                    .map_err(|e| format!("effective_threads: {e}"))?,
                deterministic: field(trimmed, "deterministic") == Some("true"),
            });
        } else if trimmed.starts_with("\"name\":") {
            arch = str_field(trimmed, "name");
        }
    }
    if report.stages.is_empty() {
        return Err("no stage rows found".to_string());
    }
    Ok(report)
}

fn check(current: &Report, baseline: Option<&Report>, tolerance: f64) -> Result<(), String> {
    if !current.all_deterministic {
        return Err("all_deterministic is not true".to_string());
    }
    if let Some(bad) = current.stages.iter().find(|s| !s.deterministic) {
        return Err(format!("stage {} is not deterministic", bad.key));
    }
    if current.configured_threads > 1 && !current.stages.iter().any(|s| s.effective_threads > 1) {
        return Err(format!(
            "configured {} pool threads but no stage dispatched more than one worker",
            current.configured_threads
        ));
    }
    let Some(base) = baseline else {
        return Ok(());
    };
    let mut compared = 0;
    for b in &base.stages {
        let Some(c) = current.stages.iter().find(|s| s.key == b.key) else {
            return Err(format!("stage {} missing from current run", b.key));
        };
        let floor = tolerance * b.throughput;
        if c.throughput < floor {
            return Err(format!(
                "stage {}: throughput {:.1} below {:.0}% of baseline {:.1}",
                b.key,
                c.throughput,
                100.0 * tolerance,
                b.throughput
            ));
        }
        compared += 1;
    }
    println!("bench_guard: {compared} stages within tolerance {tolerance}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 2 {
        eprintln!("usage: bench_guard <current.json> [<baseline.json>]");
        return ExitCode::FAILURE;
    }
    let tolerance = std::env::var("M3D_BENCH_TOLERANCE")
        .ok()
        .map(|v| v.parse().expect("M3D_BENCH_TOLERANCE must be a number"))
        .unwrap_or(0.25);
    let read = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        parse_report(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    };
    let current = read(&args[0]);
    let baseline = args.get(1).map(|p| read(p));
    match check(&current, baseline.as_ref(), tolerance) {
        Ok(()) => {
            println!("bench_guard: OK ({})", args[0]);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench_guard: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEFAULT_TIER: &str = r#"{
  "tier": "default",
  "configured_threads": 4,
  "stages": [
    {"name": "gnn_fit", "secs_1t": 0.01, "secs_nt": 0.01, "effective_threads": 4, "speedup": 1.0, "throughput_nt": 3000.0, "unit": "epochs/s", "deterministic": true},
    {"name": "fault_simulation", "secs_1t": 0.01, "secs_nt": 0.01, "effective_threads": 4, "speedup": 1.0, "throughput_nt": 150000.0, "unit": "faults/s", "deterministic": true}
  ],
  "all_deterministic": true
}
"#;

    #[test]
    fn parses_and_accepts_a_clean_default_tier() {
        let r = parse_report(DEFAULT_TIER).unwrap();
        assert_eq!(r.configured_threads, 4);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].key, "gnn_fit");
        assert_eq!(r.stages[1].throughput, 150000.0);
        check(&r, Some(&r), 0.25).unwrap();
    }

    #[test]
    fn paper_tier_stages_are_keyed_by_archetype() {
        let text = r#"{
  "tier": "paper_scale",
  "configured_threads": 4,
  "archetypes": [
    {
      "name": "aes",
      "stages": [
        {"name": "atpg", "effective_threads": 4, "throughput_nt": 100.0, "deterministic": true}
      ]
    }
  ],
  "all_deterministic": true
}
"#;
        let r = parse_report(text).unwrap();
        assert_eq!(r.stages[0].key, "aes/atpg");
    }

    #[test]
    fn flags_throughput_regression_and_lost_determinism() {
        let base = parse_report(DEFAULT_TIER).unwrap();
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        cur.stages[1].throughput = 1000.0; // far below 0.25 × 150000
        assert!(check(&cur, Some(&base), 0.25)
            .unwrap_err()
            .contains("below"));
        cur.stages[1].throughput = 150000.0;
        cur.all_deterministic = false;
        assert!(check(&cur, Some(&base), 0.25).is_err());
    }

    #[test]
    fn flags_serial_fallback_at_configured_width() {
        let mut cur = parse_report(DEFAULT_TIER).unwrap();
        for s in &mut cur.stages {
            s.effective_threads = 1;
        }
        assert!(check(&cur, None, 0.25)
            .unwrap_err()
            .contains("no stage dispatched"));
    }
}
