//! Fig. 10: PFA time saved by the proposed framework vs the plain ATPG
//! flow, as a function of the per-candidate PFA cost `x`.
//!
//! `T_total(ATPG) = T_ATPG + FHI_ATPG · x`;
//! `T_total(proposed) = max(T_ATPG, T_GNN) + T_update + FHI_update · x`.
//! Prints `T_diff(x)` series per benchmark over the Syn-2 test set.
//!
//! Run: `cargo run --release -p m3d-bench --bin fig10_pfa_savings`

use std::time::Instant;

use m3d_bench::{test_samples, train_transferred, Scale};
use m3d_dft::ObsMode;
use m3d_diagnosis::{Diagnoser, DiagnosisConfig};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

fn main() {
    let scale = Scale::from_env();
    let mode = ObsMode::Bypass;
    let xs: Vec<f64> = vec![1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0];
    println!("design,x_seconds,t_diff_seconds");
    for bench in Benchmark::ALL {
        let (_corpus, fw) = train_transferred(bench, mode, &scale);
        let (env, samples) = test_samples(bench, DesignConfig::Syn2, mode, &scale);
        let fsim = env.fault_sim();
        let diagnoser = Diagnoser::new(&fsim, &env.scan, mode, DiagnosisConfig::default());

        let t0 = Instant::now();
        let reports: Vec<_> = samples.iter().map(|s| diagnoser.diagnose(&s.log)).collect();
        let t_atpg = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let outcomes: Vec<_> = samples
            .iter()
            .zip(&reports)
            .map(|(s, r)| fw.enhance(&env.design, r, s))
            .collect();
        let t_gnn_update = t1.elapsed().as_secs_f64();

        // Sum FHI over the test set (misses cost the full report length).
        let fhi_sum = |reports: &[&m3d_diagnosis::DiagnosisReport]| -> f64 {
            reports
                .iter()
                .zip(&samples)
                .map(|(r, s)| {
                    r.first_hit_index(&s.injected)
                        .unwrap_or(r.resolution().max(1)) as f64
                })
                .sum()
        };
        let atpg_refs: Vec<&_> = reports.iter().collect();
        let upd_refs: Vec<&_> = outcomes.iter().map(|o| &o.report).collect();
        let fhi_atpg = fhi_sum(&atpg_refs);
        let fhi_upd = fhi_sum(&upd_refs);

        for &x in &xs {
            // GNN inference overlaps the ATPG diagnosis (Fig. 9); only the
            // update step adds serial latency.
            let t_diff = (t_atpg + fhi_atpg * x) - (t_atpg + t_gnn_update + fhi_upd * x);
            println!("{},{x},{t_diff:.2}", bench.name());
        }
        eprintln!(
            "[{}] FHI sum {fhi_atpg:.0} -> {fhi_upd:.0} over {} chips",
            bench.name(),
            samples.len()
        );
    }
}
