//! Table IX / Fig. 9: runtime analysis of the proposed framework —
//! training-phase feature construction and GNN training, and deployment
//! `T_ATPG` (diagnosis), `T_GNN` (inference), `T_update` (pruning and
//! reordering) over the Syn-2 test set.
//!
//! Run: `cargo run --release -p m3d-bench --bin table9_runtime`

use std::time::Instant;

use m3d_bench::{print_table, test_samples, train_transferred, Scale};
use m3d_dft::ObsMode;
use m3d_fault_localization::{diagnose_all, parallel_map, FaultLocalizer, TestEnv};
use m3d_hetgraph::HetGraph;
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

fn main() {
    let scale = Scale::from_env();
    let mode = ObsMode::Bypass;
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        // Training phase: feature construction (heterogeneous graph) and
        // GNN training.
        let t0 = Instant::now();
        let env0 = TestEnv::build(bench, DesignConfig::Syn1, scale.target);
        let _het = HetGraph::new(&env0.design); // rebuilt for timing clarity
        let feature_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let (_corpus, fw): (_, FaultLocalizer) = train_transferred(bench, mode, &scale);
        let train_s = t1.elapsed().as_secs_f64();

        // Deployment on the Syn-2 test set. Each stage fans its
        // per-sample work across the `m3d_par` pool.
        let (env, samples) = test_samples(bench, DesignConfig::Syn2, mode, &scale);
        let fsim = env.fault_sim();

        let t2 = Instant::now();
        let reports = diagnose_all(&env, &fsim, mode, &samples);
        let t_atpg = t2.elapsed().as_secs_f64();

        let t3 = Instant::now();
        let preds = parallel_map(&samples, |s| {
            s.subgraph
                .as_ref()
                .map(|sg| (fw.tier.predict(sg), fw.miv.predict_faulty_mivs(sg)))
        });
        let t_gnn = t3.elapsed().as_secs_f64();

        let t4 = Instant::now();
        let indices: Vec<usize> = (0..samples.len()).collect();
        let _ = parallel_map(&indices, |&i| {
            fw.enhance(&env.design, &reports[i], &samples[i])
        });
        let t_update = t4.elapsed().as_secs_f64();
        let _ = preds;

        rows.push(vec![
            bench.name().to_string(),
            format!("{feature_s:.4}"),
            format!("{train_s:.2}"),
            format!("{t_atpg:.3}"),
            format!("{t_gnn:.4}"),
            format!("{t_update:.4}"),
        ]);
        eprintln!("[{}] done", bench.name());
    }
    print_table(
        "Table IX: runtime (seconds) — training and deployment (Syn-2 test set)",
        &[
            "Design",
            "Feature constr.",
            "GNN training",
            "T_ATPG",
            "T_GNN",
            "T_update",
        ],
        &rows,
    );
    println!(
        "\nFig. 9 decomposition: deployment = max(T_ATPG, T_GNN) + T_update; \
         GNN inference runs alongside the ATPG diagnosis."
    );
}
