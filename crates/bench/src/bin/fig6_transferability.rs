//! Fig. 6: accuracy of dedicated vs transferred GNN models on the Tate
//! benchmark across the four design configurations.
//!
//! *Dedicated* models train on the evaluated configuration itself;
//! the *transferred* model trains once on Syn-1 + two randomly-partitioned
//! netlists and is applied to every configuration without retraining.
//!
//! Run: `cargo run --release -p m3d-bench --bin fig6_transferability`

use m3d_bench::{print_table, test_samples, train_transferred, Scale};
use m3d_dft::ObsMode;
use m3d_fault_localization::{
    generate_samples, DiagSample, InjectionKind, MivPinpointer, TierPredictor,
};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

fn main() {
    let scale = Scale::from_env();
    let mode = ObsMode::Bypass;
    let bench = Benchmark::Tate;
    let cfg = scale.framework_config().model;

    let (_corpus, transferred) = train_transferred(bench, mode, &scale);

    let mut rows = Vec::new();
    for config in DesignConfig::ALL {
        // Dedicated: train and test on this configuration.
        let (env, test) = test_samples(bench, config, mode, &scale);
        let train: Vec<DiagSample> = {
            let fsim = env.fault_sim();
            generate_samples(
                &env,
                &fsim,
                mode,
                InjectionKind::Single,
                scale.train_per_netlist * 3,
                777,
            )
        };
        let train_refs: Vec<&DiagSample> = train.iter().collect();
        let dedicated_tier = TierPredictor::train(&train_refs, &cfg);
        let dedicated_miv = MivPinpointer::train(&train_refs, &cfg);

        let test_refs: Vec<&DiagSample> = test.iter().collect();
        rows.push(vec![
            config.name().to_string(),
            format!("{:.3}", dedicated_tier.accuracy(&test_refs)),
            format!("{:.3}", transferred.tier.accuracy(&test_refs)),
            format!("{:.3}", dedicated_miv.accuracy(&test_refs)),
            format!("{:.3}", transferred.miv.accuracy(&test_refs)),
        ]);
        eprintln!("[{}] done", config.name());
    }
    print_table(
        "Fig. 6: dedicated vs transferred model accuracy (Tate)",
        &[
            "Config",
            "Dedicated Tier",
            "Transferred Tier",
            "Dedicated MIV",
            "Transferred MIV",
        ],
        &rows,
    );
}
