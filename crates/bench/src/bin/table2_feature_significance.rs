//! Table II: significance scores of the sub-graph node features.
//!
//! The paper scores feature importance with GNNExplainer; this harness uses
//! permutation significance on the trained Tier-predictor (see
//! `m3d_gnn::permutation_significance`): ≈0.5 means the model performs the
//! same with the feature destroyed, higher means it leans on the feature.
//!
//! Run: `cargo run --release -p m3d-bench --bin table2_feature_significance`

use m3d_bench::{print_table, transferred_corpus, Scale};
use m3d_dft::ObsMode;
use m3d_fault_localization::{InjectionKind, ModelConfig, TierPredictor};
use m3d_gnn::{permutation_significance, GraphData};
use m3d_hetgraph::FEATURE_NAMES;
use m3d_netlist::generate::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let corpus = transferred_corpus(
        Benchmark::Tate,
        ObsMode::Bypass,
        &scale,
        InjectionKind::Single,
    );
    let refs: Vec<&_> = corpus.samples.iter().collect();
    let cfg = ModelConfig {
        train: m3d_gnn::TrainConfig {
            epochs: scale.epochs,
            ..Default::default()
        },
        ..Default::default()
    };
    let tier = TierPredictor::train(&refs, &cfg);

    // Score significance on the tier-labelled samples.
    let labelled: Vec<(&GraphData, usize)> = corpus
        .samples
        .iter()
        .filter(|s| s.tier_trainable())
        .map(|s| {
            (
                &s.subgraph.as_ref().expect("trainable").data,
                s.faulty_tier.expect("trainable").index(),
            )
        })
        .collect();
    let scores = permutation_significance(tier.model(), &labelled, 13);

    let rows: Vec<Vec<String>> = FEATURE_NAMES
        .iter()
        .zip(&scores)
        .map(|(name, s)| vec![name.to_string(), format!("{s:.4}")])
        .collect();
    print_table(
        "Table II: feature significance (permutation importance on Tate)",
        &["Feature", "Significance"],
        &rows,
    );
    println!(
        "\nEvery feature scoring near or above 0.5 contributes; both \
         circuit-level and top-level features matter (paper's conclusion)."
    );
}
