//! Table VI: effectiveness of delay-fault localization *without* response
//! compaction — the 2D baseline \[11\], the proposed framework standalone,
//! and the combined GNN + \[11\] flow, plus tier-level localization rates.
//!
//! Run: `cargo run --release -p m3d-bench --bin table6_effectiveness`

use m3d_bench::{print_effectiveness, run_effectiveness, Scale};
use m3d_dft::ObsMode;

fn main() {
    let scale = Scale::from_env();
    let rows = run_effectiveness(ObsMode::Bypass, &scale);
    print_effectiveness(
        "Table VI: delay fault-localization effectiveness (no compaction)",
        &rows,
    );
}
