//! Table X: localization of multiple delay faults (2–5 TDFs injected in
//! one tier — the tier-specific systematic-defect scenario of Section
//! VII-A). Trains on Syn-1 multi-fault samples, tests on Syn-2.
//!
//! Run: `cargo run --release -p m3d-bench --bin table10_multifault`

use m3d_bench::{mean_std_cell, pct, print_table, transferred_corpus, Scale};
use m3d_dft::ObsMode;
use m3d_diagnosis::QualityAccumulator;
use m3d_fault_localization::{
    evaluate_methods, generate_samples, DiagSample, FaultLocalizer, InjectionKind, TestEnv,
};
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

fn main() {
    let scale = Scale::from_env();
    let mode = ObsMode::Bypass;
    let mut atpg_rows = Vec::new();
    let mut fw_rows = Vec::new();
    for bench in Benchmark::ALL {
        // Train on multi-fault samples (Syn-1 + augmentation).
        let corpus = transferred_corpus(bench, mode, &scale, InjectionKind::MultiSameTier);
        let refs: Vec<&DiagSample> = corpus.samples.iter().collect();
        let fw = FaultLocalizer::train(&refs, &scale.framework_config());

        // Test on Syn-2 multi-fault chips.
        let env = TestEnv::build(bench, DesignConfig::Syn2, scale.target);
        let samples = {
            let fsim = env.fault_sim();
            generate_samples(
                &env,
                &fsim,
                mode,
                InjectionKind::MultiSameTier,
                scale.test_n,
                4242,
            )
        };
        let fsim = env.fault_sim();
        let eval = evaluate_methods(&env, &fsim, &fw, mode, &samples);

        // ATPG-only row.
        let reports = m3d_fault_localization::diagnose_all(&env, &fsim, mode, &samples);
        let mut acc = QualityAccumulator::new();
        for (r, s) in reports.iter().zip(&samples) {
            acc.add(r, &s.injected);
        }
        let q = acc.finish();
        atpg_rows.push(vec![
            bench.name().to_string(),
            pct(q.accuracy),
            mean_std_cell(q.mean_resolution, q.std_resolution),
            mean_std_cell(q.mean_fhi, q.std_fhi),
        ]);
        fw_rows.push(vec![
            bench.name().to_string(),
            pct(eval.gnn.accuracy),
            mean_std_cell(eval.gnn.mean_resolution, eval.gnn.std_resolution),
            mean_std_cell(eval.gnn.mean_fhi, eval.gnn.std_fhi),
            pct(eval.gnn.tier_localization),
        ]);
        eprintln!("[{}] done", bench.name());
    }
    print_table(
        "Table X (a): multi-fault chips — ATPG diagnosis only",
        &["Design", "Accuracy", "Resolution μ(σ)", "FHI μ(σ)"],
        &atpg_rows,
    );
    print_table(
        "Table X (b): multi-fault chips — proposed framework",
        &[
            "Design",
            "Accuracy",
            "Resolution μ(σ)",
            "FHI μ(σ)",
            "Tier local.",
        ],
        &fw_rows,
    );
}
