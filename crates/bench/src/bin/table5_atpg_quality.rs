//! Table V: quality of ATPG diagnosis reports for M3D benchmarks
//! *without* response compaction.
//!
//! For every benchmark × design configuration: diagnose the test set with
//! the ATPG-diagnosis stand-in and report accuracy, mean/std diagnostic
//! resolution, and mean/std FHI.
//!
//! Run: `cargo run --release -p m3d-bench --bin table5_atpg_quality`
//! (`M3D_QUICK=1` for the smoke version).

use m3d_bench::{mean_std_cell, pct, print_table, test_samples, Scale};
use m3d_dft::ObsMode;
use m3d_diagnosis::QualityAccumulator;
use m3d_fault_localization::diagnose_all;
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

fn main() {
    let scale = Scale::from_env();
    let mode = ObsMode::Bypass;
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        for config in DesignConfig::ALL {
            let t0 = std::time::Instant::now();
            let (env, samples) = test_samples(bench, config, mode, &scale);
            let fsim = env.fault_sim();
            let reports = diagnose_all(&env, &fsim, mode, &samples);
            let mut acc = QualityAccumulator::new();
            for (r, s) in reports.iter().zip(&samples) {
                acc.add(r, &s.injected);
            }
            let q = acc.finish();
            eprintln!(
                "[{} {}] {} samples in {:.1}s",
                bench.name(),
                config.name(),
                q.samples,
                t0.elapsed().as_secs_f64()
            );
            rows.push(vec![
                bench.name().to_string(),
                config.name().to_string(),
                pct(q.accuracy),
                mean_std_cell(q.mean_resolution, q.std_resolution),
                mean_std_cell(q.mean_fhi, q.std_fhi),
            ]);
        }
    }
    print_table(
        "Table V: ATPG diagnosis report quality (no response compaction)",
        &[
            "Design",
            "Config",
            "Accuracy",
            "Resolution μ(σ)",
            "FHI μ(σ)",
        ],
        &rows,
    );
}
