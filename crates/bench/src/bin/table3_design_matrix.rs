//! Table III: the design matrix of the M3D benchmarks — gate count, MIVs,
//! scan chains/channels, chain length, pattern count, and fault coverage.
//!
//! Run: `cargo run --release -p m3d-bench --bin table3_design_matrix`

use m3d_bench::{pct, print_table, Scale};
use m3d_fault_localization::TestEnv;
use m3d_netlist::generate::Benchmark;
use m3d_part::DesignConfig;

fn main() {
    let scale = Scale::from_env();
    let rows: Vec<Vec<String>> = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let env = TestEnv::build(bench, DesignConfig::Syn1, scale.target);
            let stats = env.design.netlist().stats();
            vec![
                bench.name().to_string(),
                stats.gates.to_string(),
                env.design.miv_count().to_string(),
                format!("{} ({})", env.scan.chain_count(), env.scan.channel_count()),
                env.scan.max_chain_length().to_string(),
                env.test_set.pattern_count().to_string(),
                pct(env.test_set.fault_coverage),
            ]
        })
        .collect();
    print_table(
        "Table III: design matrix of M3D benchmarks",
        &[
            "Design",
            "Gates",
            "#MIVs",
            "Nsc (Nch)",
            "Chain len",
            "#Patterns",
            "FC",
        ],
        &rows,
    );
}
