//! Table VIII: effectiveness of delay-fault localization *with* response
//! compaction (20× XOR compactor): baseline \[11\], GNN standalone, and combined flows.
//!
//! Run: `cargo run --release -p m3d-bench --bin table8_effectiveness_edt`

use m3d_bench::{print_effectiveness, run_effectiveness, Scale};
use m3d_dft::ObsMode;

fn main() {
    let scale = Scale::from_env();
    let rows = run_effectiveness(ObsMode::Compacted, &scale);
    print_effectiveness(
        "Table VIII: delay fault-localization effectiveness (with compaction)",
        &rows,
    );
}
