//! Property tests over randomly *constructed* netlists (builder-driven
//! DAGs, not the benchmark generators): structural invariants of the
//! netlist core must hold for arbitrary valid circuits.

use proptest::prelude::*;

use m3d_netlist::io::{read_netlist, write_netlist};
use m3d_netlist::{GateKind, NetId, NetlistBuilder, SiteTable};

/// Builds a random layered DAG netlist from a proptest plan.
/// `plan[i] = (kind_choice, src_a, src_b, src_c)` adds one gate whose
/// inputs are drawn (mod available) from already-created nets.
fn build(plan: &[(u8, u16, u16, u16)], n_inputs: usize) -> m3d_netlist::Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut nets: Vec<NetId> = (0..n_inputs)
        .map(|i| b.add_input(&format!("i{i}")))
        .collect();
    for &(kind, a, c, d) in plan {
        let pick = |k: u16| nets[k as usize % nets.len()];
        let net = match kind % 7 {
            0 => b.add_gate(GateKind::Inv, &[pick(a)]),
            1 => b.add_gate(GateKind::And, &[pick(a), pick(c)]),
            2 => b.add_gate(GateKind::Nor, &[pick(a), pick(c)]),
            3 => b.add_gate(GateKind::Xor, &[pick(a), pick(c)]),
            4 => b.add_gate(GateKind::Mux2, &[pick(a), pick(c), pick(d)]),
            5 => b.add_gate(GateKind::Aoi21, &[pick(a), pick(c), pick(d)]),
            _ => b.add_dff(pick(a)),
        };
        nets.push(net);
    }
    // Make every net observable: sweep danglers into one big OR tree fed
    // to a flop; also guarantees at least one flop exists.
    let dangling = b.dangling_nets();
    let mut acc = dangling[0];
    for &n in &dangling[1..] {
        acc = b.add_gate(GateKind::Or, &[acc, n]);
    }
    let q = b.add_dff(acc);
    b.add_output("q", q);
    b.finish().expect("random DAG construction is always valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_netlists_validate_and_levelize(
        plan in prop::collection::vec((0u8..7, any::<u16>(), any::<u16>(), any::<u16>()), 3..120),
        n_inputs in 1usize..6,
    ) {
        let nl = build(&plan, n_inputs);
        // Levelization: every combinational gate deeper than its comb preds.
        for &g in nl.topo_order() {
            for p in nl.fanin_gates(g) {
                if nl.gate(p).kind().is_combinational() {
                    prop_assert!(nl.level(p) < nl.level(g));
                }
            }
        }
        prop_assert!(nl.stats().flops >= 1);
    }

    #[test]
    fn random_netlists_round_trip_through_text(
        plan in prop::collection::vec((0u8..7, any::<u16>(), any::<u16>(), any::<u16>()), 3..80),
        n_inputs in 1usize..5,
    ) {
        let nl = build(&plan, n_inputs);
        let text = write_netlist(&nl);
        let back = read_netlist(&text).expect("round trip parses");
        prop_assert_eq!(back.gate_count(), nl.gate_count());
        prop_assert_eq!(write_netlist(&back), text, "canonical form");
    }

    #[test]
    fn site_tables_cover_every_pin_exactly_once(
        plan in prop::collection::vec((0u8..7, any::<u16>(), any::<u16>(), any::<u16>()), 3..80),
        n_inputs in 1usize..5,
    ) {
        let nl = build(&plan, n_inputs);
        let sites = SiteTable::from_netlist(&nl);
        let expected: usize = nl
            .gates()
            .iter()
            .map(|g| g.inputs().len() + usize::from(g.kind().has_output()))
            .sum();
        prop_assert_eq!(sites.len(), expected);
        // Bijectivity: every site maps back to itself.
        for (id, pos) in sites.iter() {
            match pos {
                m3d_netlist::SitePos::Input(g, p) => {
                    prop_assert_eq!(sites.input_site(g, p), id)
                }
                m3d_netlist::SitePos::Output(g) => {
                    prop_assert_eq!(sites.output_site(&nl, g), Some(id))
                }
                m3d_netlist::SitePos::Miv(_) => unreachable!(),
            }
        }
    }
}
