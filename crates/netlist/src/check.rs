//! Structural design-rule checks (DRC) over netlists.
//!
//! This module is the single source of truth for what a *structurally
//! sound* netlist looks like. It is consumed three ways:
//!
//! * `Netlist::from_parts` enforces the fatal subset at construction time
//!   (via the same issue enumeration, so the two can never diverge),
//! * [`io::read_netlist`](crate::io::read_netlist) re-runs the full check so
//!   a successfully parsed file is lint-clean by construction,
//! * the `m3d-lint` crate maps every [`StructuralIssue`] to a stable
//!   `L0xxx` diagnostic code.
//!
//! Unlike construction-time validation, nothing here panics on corrupt
//! inputs — every table access is bounds-guarded — so the checks can run
//! over netlists assembled through [`crate::raw`].

use std::fmt;

use crate::gate::GateKind;
use crate::ids::{GateId, NetId};
use crate::netlist::{Gate, Net, Netlist};

/// One structural defect found by [`check_parts`].
///
/// Issues split into *fatal* ones (the netlist violates an invariant the
/// rest of the workspace relies on) and advisory ones
/// ([`is_fatal`](StructuralIssue::is_fatal) returns `false`): suspicious
/// but representable structure, e.g. dead logic cones.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StructuralIssue {
    /// A gate's input pin references a net index that does not exist.
    UnknownNet {
        /// The offending gate.
        gate: GateId,
        /// The out-of-range net reference.
        net: NetId,
    },
    /// A gate has an illegal number of input pins for its kind.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// Number of pins supplied.
        got: usize,
    },
    /// A driving gate kind (anything but `Output`) has no output net.
    MissingOutput {
        /// The offending gate.
        gate: GateId,
    },
    /// An `Output` pseudo cell claims to drive a net.
    PseudoOutputDrives {
        /// The offending gate.
        gate: GateId,
    },
    /// The design has no flip-flops, so no scan test is possible.
    NoFlops,
    /// A net has no sinks.
    DanglingNet {
        /// The dangling net.
        net: NetId,
    },
    /// A net's driver field references a gate index that does not exist.
    BadDriver {
        /// The offending net.
        net: NetId,
        /// The out-of-range gate reference.
        driver: GateId,
    },
    /// A net's sink list references a gate index that does not exist.
    BadSink {
        /// The offending net.
        net: NetId,
        /// The out-of-range gate reference.
        sink: GateId,
    },
    /// A net's driver/sink tables disagree with the gates' pin lists
    /// (includes multi-driven nets: two gates claiming the same output).
    CrossRefMismatch {
        /// The inconsistent net.
        net: NetId,
    },
    /// The same `(gate, pin)` branch appears twice on one net.
    DuplicateSink {
        /// The offending net.
        net: NetId,
        /// The duplicated sink gate.
        gate: GateId,
        /// The duplicated sink pin.
        pin: u8,
    },
    /// The combinational core contains a cycle through the listed gates
    /// (one issue per strongly connected component).
    CombinationalCycle {
        /// The gates forming the cycle, ascending.
        gates: Vec<GateId>,
    },
    /// A combinational gate from which neither a primary output nor a flop
    /// D pin is reachable: its value can never be observed (advisory).
    UnobservableGate {
        /// The dead-cone gate.
        gate: GateId,
    },
    /// The design has no primary inputs (advisory).
    NoPrimaryInputs,
    /// The design has no primary outputs (advisory).
    NoPrimaryOutputs,
}

impl StructuralIssue {
    /// Whether the issue violates a hard [`Netlist`] invariant.
    ///
    /// Fatal issues are rejected by [`NetlistBuilder::finish`](crate::NetlistBuilder::finish)
    /// (crate::NetlistBuilder::finish) and
    /// [`io::read_netlist`](crate::io::read_netlist); advisory issues only
    /// surface through `m3d-lint` as warnings.
    pub fn is_fatal(&self) -> bool {
        !matches!(
            self,
            StructuralIssue::UnobservableGate { .. }
                | StructuralIssue::NoPrimaryInputs
                | StructuralIssue::NoPrimaryOutputs
        )
    }
}

impl fmt::Display for StructuralIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructuralIssue::UnknownNet { gate, net } => {
                write!(f, "gate {gate} references unknown net {net}")
            }
            StructuralIssue::BadArity { gate, got } => {
                write!(f, "gate {gate} has illegal arity {got}")
            }
            StructuralIssue::MissingOutput { gate } => {
                write!(f, "driving gate {gate} has no output net")
            }
            StructuralIssue::PseudoOutputDrives { gate } => {
                write!(f, "output pseudo cell {gate} drives a net")
            }
            StructuralIssue::NoFlops => write!(f, "design contains no flip-flops"),
            StructuralIssue::DanglingNet { net } => {
                write!(f, "net {net} has no sinks")
            }
            StructuralIssue::BadDriver { net, driver } => {
                write!(f, "net {net} driven by unknown gate {driver}")
            }
            StructuralIssue::BadSink { net, sink } => {
                write!(f, "net {net} fans out to unknown gate {sink}")
            }
            StructuralIssue::CrossRefMismatch { net } => {
                write!(f, "net {net} connectivity disagrees with gate pin lists")
            }
            StructuralIssue::DuplicateSink { net, gate, pin } => {
                write!(f, "net {net} lists sink {gate} pin {pin} twice")
            }
            StructuralIssue::CombinationalCycle { gates } => {
                write!(f, "combinational cycle through")?;
                for (i, g) in gates.iter().take(8).enumerate() {
                    write!(f, "{} {g}", if i == 0 { "" } else { "," })?;
                }
                if gates.len() > 8 {
                    write!(f, " (+{} more)", gates.len() - 8)?;
                }
                Ok(())
            }
            StructuralIssue::UnobservableGate { gate } => {
                write!(f, "gate {gate} reaches no primary output or flop")
            }
            StructuralIssue::NoPrimaryInputs => {
                write!(f, "design has no primary inputs")
            }
            StructuralIssue::NoPrimaryOutputs => {
                write!(f, "design has no primary outputs")
            }
        }
    }
}

/// Runs every structural check over a built netlist.
pub fn check_netlist(netlist: &Netlist) -> Vec<StructuralIssue> {
    check_parts(netlist.gates(), netlist.nets())
}

/// Runs every structural check over raw netlist parts.
///
/// Issues are emitted in a deterministic order: per-gate pin/arity issues
/// first (gate order), then global counts, per-net connectivity, cycles,
/// and finally the advisory observability issues.
pub fn check_parts(gates: &[Gate], nets: &[Net]) -> Vec<StructuralIssue> {
    let mut issues = Vec::new();
    let mut has_flops = false;
    let mut has_inputs = false;
    let mut has_outputs = false;

    for (i, g) in gates.iter().enumerate() {
        let id = GateId::new(i);
        match g.kind() {
            GateKind::Input => has_inputs = true,
            GateKind::Output => has_outputs = true,
            GateKind::Dff => has_flops = true,
            _ => {}
        }
        let arity = g.inputs().len();
        if !g.kind().arity_ok(arity) {
            issues.push(StructuralIssue::BadArity {
                gate: id,
                got: arity,
            });
        }
        for &net in g.inputs() {
            if net.index() >= nets.len() {
                issues.push(StructuralIssue::UnknownNet { gate: id, net });
            }
        }
        match (g.kind().has_output(), g.output()) {
            (true, None) => issues.push(StructuralIssue::MissingOutput { gate: id }),
            (false, Some(_)) => issues.push(StructuralIssue::PseudoOutputDrives { gate: id }),
            _ => {
                if let Some(out) = g.output() {
                    if out.index() >= nets.len() {
                        issues.push(StructuralIssue::UnknownNet { gate: id, net: out });
                    }
                }
            }
        }
    }
    if !has_flops {
        issues.push(StructuralIssue::NoFlops);
    }

    for (i, n) in nets.iter().enumerate() {
        let id = NetId::new(i);
        if n.sinks().is_empty() {
            issues.push(StructuralIssue::DanglingNet { net: id });
        }
        let mut consistent = true;
        match gates.get(n.driver().index()) {
            None => {
                issues.push(StructuralIssue::BadDriver {
                    net: id,
                    driver: n.driver(),
                });
                consistent = false;
            }
            Some(d) => {
                if d.output() != Some(id) {
                    // Covers multi-driven nets too: a second claimant's
                    // output points here while the driver table names the
                    // first, or vice versa.
                    issues.push(StructuralIssue::CrossRefMismatch { net: id });
                    consistent = false;
                }
            }
        }
        let mut seen: Vec<(GateId, u8)> = Vec::with_capacity(n.sinks().len());
        for &(sink, pin) in n.sinks() {
            match gates.get(sink.index()) {
                None => {
                    issues.push(StructuralIssue::BadSink { net: id, sink });
                    consistent = false;
                    continue;
                }
                Some(s) => {
                    if s.inputs().get(pin as usize) != Some(&id) && consistent {
                        issues.push(StructuralIssue::CrossRefMismatch { net: id });
                        consistent = false;
                    }
                }
            }
            if seen.contains(&(sink, pin)) {
                issues.push(StructuralIssue::DuplicateSink {
                    net: id,
                    gate: sink,
                    pin,
                });
            } else {
                seen.push((sink, pin));
            }
        }
    }
    // Reverse direction: every gate input pin must appear in its net's
    // sink list (one mismatch reported per net).
    let mut flagged: Vec<NetId> = Vec::new();
    for (i, g) in gates.iter().enumerate() {
        let id = GateId::new(i);
        for (pin, &net) in g.inputs().iter().enumerate() {
            let Some(n) = nets.get(net.index()) else {
                continue;
            };
            if !n.sinks().contains(&(id, pin as u8)) && !flagged.contains(&net) {
                issues.push(StructuralIssue::CrossRefMismatch { net });
                flagged.push(net);
            }
        }
    }

    for gates_on_cycle in combinational_cycles(gates, nets) {
        issues.push(StructuralIssue::CombinationalCycle {
            gates: gates_on_cycle,
        });
    }
    for gate in unobservable_gates(gates, nets) {
        issues.push(StructuralIssue::UnobservableGate { gate });
    }
    if !has_inputs {
        issues.push(StructuralIssue::NoPrimaryInputs);
    }
    if !has_outputs {
        issues.push(StructuralIssue::NoPrimaryOutputs);
    }
    issues
}

/// Enumerates the cyclic strongly connected components of the
/// combinational core (iterative Tarjan). Each returned component is a
/// sorted list of gates on one cycle; acyclic netlists return nothing.
pub fn combinational_cycles(gates: &[Gate], nets: &[Net]) -> Vec<Vec<GateId>> {
    let n = gates.len();
    // Successor lists over combinational gates only, bounds-guarded.
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, g) in gates.iter().enumerate() {
        if !g.kind().is_combinational() {
            continue;
        }
        let Some(out) = g.output() else { continue };
        let Some(net) = nets.get(out.index()) else {
            continue;
        };
        for &(sink, _) in net.sinks() {
            let si = sink.index();
            if si < n && gates[si].kind().is_combinational() {
                succ[i].push(si as u32);
            }
        }
    }

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    let mut cycles = Vec::new();
    // Explicit DFS frames: (node, next successor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED || !gates[root].kind().is_combinational() {
            continue;
        }
        frames.push((root as u32, 0));
        while let Some(&mut (v, ref mut si)) = frames.last_mut() {
            let vi = v as usize;
            if *si == 0 {
                index[vi] = next;
                low[vi] = next;
                next += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            if let Some(&w) = succ[vi].get(*si) {
                *si += 1;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let pi = parent as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == index[vi] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC root still on stack");
                        on_stack[w as usize] = false;
                        scc.push(GateId::new(w as usize));
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = scc.len() > 1 || succ[vi].contains(&v); // self-loop
                    if cyclic {
                        scc.sort_unstable();
                        cycles.push(scc);
                    }
                }
            }
        }
    }
    cycles.sort();
    cycles
}

/// Combinational gates from which no primary output and no flop D pin is
/// reachable (dead logic cones). Computed by reverse reachability from all
/// `Output` cells and flip-flops.
fn unobservable_gates(gates: &[Gate], nets: &[Net]) -> Vec<GateId> {
    let n = gates.len();
    let mut reached = vec![false; n];
    let mut work: Vec<u32> = Vec::new();
    for (i, g) in gates.iter().enumerate() {
        if matches!(g.kind(), GateKind::Output | GateKind::Dff) {
            reached[i] = true;
            work.push(i as u32);
        }
    }
    while let Some(v) = work.pop() {
        for &net in gates[v as usize].inputs() {
            let Some(nn) = nets.get(net.index()) else {
                continue;
            };
            let di = nn.driver().index();
            if di < n && !reached[di] {
                reached[di] = true;
                work.push(di as u32);
            }
        }
    }
    (0..n)
        .filter(|&i| gates[i].kind().is_combinational() && !reached[i])
        .map(GateId::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::raw;

    fn valid() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let x = b.add_gate(GateKind::Nand, &[a, c]);
        let q = b.add_dff(x);
        let y = b.add_gate(GateKind::Xor, &[q, a]);
        b.add_output("y", y);
        b.finish().unwrap()
    }

    #[test]
    fn valid_netlist_has_no_issues() {
        assert!(check_netlist(&valid()).is_empty());
    }

    #[test]
    fn dangling_net_makes_driver_unobservable() {
        let (name, gates, mut nets) = raw::parts_of(valid());
        // Cut all fan-out branches of the NAND's output (net 2).
        let victim = NetId::new(2);
        let driver = nets[2].driver();
        nets[2] = raw::net(driver, &[]);
        // The XOR's and DFF's pin lists still reference net 2.
        let issues = check_parts(&gates, &nets);
        assert!(issues.contains(&StructuralIssue::DanglingNet { net: victim }));
        assert!(issues
            .iter()
            .any(|i| matches!(i, StructuralIssue::CrossRefMismatch { .. })));
        let _ = name;
    }

    #[test]
    fn cycle_enumeration_lists_members() {
        // g0: INPUT -> n0; g1: AND(n0, n2) -> n1; g2: BUF(n1) -> n2;
        // g3: DFF(n1) -> n3; g4: OUTPUT(n3)
        let gates = vec![
            raw::gate(GateKind::Input, &[], Some(NetId::new(0))),
            raw::gate(
                GateKind::And,
                &[NetId::new(0), NetId::new(2)],
                Some(NetId::new(1)),
            ),
            raw::gate(GateKind::Buf, &[NetId::new(1)], Some(NetId::new(2))),
            raw::gate(GateKind::Dff, &[NetId::new(1)], Some(NetId::new(3))),
            raw::gate(GateKind::Output, &[NetId::new(3)], None),
        ];
        let nets = vec![
            raw::net(GateId::new(0), &[(GateId::new(1), 0)]),
            raw::net(GateId::new(1), &[(GateId::new(2), 0), (GateId::new(3), 0)]),
            raw::net(GateId::new(2), &[(GateId::new(1), 1)]),
            raw::net(GateId::new(3), &[(GateId::new(4), 0)]),
        ];
        let cycles = combinational_cycles(&gates, &nets);
        assert_eq!(cycles, vec![vec![GateId::new(1), GateId::new(2)]]);
        let issues = check_parts(&gates, &nets);
        assert!(issues
            .iter()
            .any(|i| matches!(i, StructuralIssue::CombinationalCycle { .. })));
    }

    #[test]
    fn out_of_range_references_are_reported_not_panicked() {
        let gates = vec![
            raw::gate(GateKind::Input, &[], Some(NetId::new(0))),
            raw::gate(GateKind::Dff, &[NetId::new(9)], Some(NetId::new(1))),
            raw::gate(GateKind::Output, &[NetId::new(1)], None),
        ];
        let nets = vec![
            raw::net(GateId::new(0), &[(GateId::new(1), 0)]),
            raw::net(
                GateId::new(99),
                &[(GateId::new(2), 0), (GateId::new(77), 0)],
            ),
        ];
        let issues = check_parts(&gates, &nets);
        assert!(issues.contains(&StructuralIssue::UnknownNet {
            gate: GateId::new(1),
            net: NetId::new(9),
        }));
        assert!(issues.contains(&StructuralIssue::BadDriver {
            net: NetId::new(1),
            driver: GateId::new(99),
        }));
        assert!(issues.contains(&StructuralIssue::BadSink {
            net: NetId::new(1),
            sink: GateId::new(77),
        }));
    }

    #[test]
    fn advisory_issues_are_not_fatal() {
        assert!(!StructuralIssue::NoPrimaryInputs.is_fatal());
        assert!(!StructuralIssue::UnobservableGate {
            gate: GateId::new(0)
        }
        .is_fatal());
        assert!(StructuralIssue::NoFlops.is_fatal());
    }
}
