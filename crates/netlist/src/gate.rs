//! Gate primitives of the standard-cell-like library used by the generators.
//!
//! The library mirrors the combinational subset of Nangate45 that the paper's
//! synthesized benchmarks use, plus pseudo cells for primary inputs/outputs
//! and a D flip-flop. Every combinational kind evaluates bitwise over `u64`
//! words, so 64 test patterns are simulated per call (parallel-pattern
//! simulation).

use std::fmt;

/// The functional kind of a gate.
///
/// `Input` and `Output` are pseudo cells marking primary inputs and outputs;
/// `Dff` is the only sequential element (scan insertion happens in
/// `m3d-dft`, the netlist itself stays technology-plain).
///
/// # Examples
///
/// ```
/// use m3d_netlist::GateKind;
///
/// assert_eq!(GateKind::Nand.eval(&[0b1100, 0b1010]), !(0b1100 & 0b1010));
/// assert!(GateKind::Xor.is_combinational());
/// assert!(!GateKind::Dff.is_combinational());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GateKind {
    /// Primary input (no input pins, one output net).
    Input,
    /// Primary output (one input pin, no output net).
    Output,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// N-input AND.
    And,
    /// N-input NAND.
    Nand,
    /// N-input OR.
    Or,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 multiplexer; pins are `(select, a, b)`, output `a` when select=0.
    Mux2,
    /// AND-OR-invert 2-1: `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert 2-1: `!((a | b) & c)`.
    Oai21,
    /// D flip-flop; one data pin `D`, output `Q`.
    Dff,
}

impl GateKind {
    /// Returns `true` for kinds whose output is a pure function of the
    /// current input values.
    #[inline]
    pub fn is_combinational(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Output | GateKind::Dff)
    }

    /// Returns `true` if this kind drives a net (everything except `Output`).
    #[inline]
    pub fn has_output(self) -> bool {
        !matches!(self, GateKind::Output)
    }

    /// The exact pin count this kind requires, or `None` for variadic kinds
    /// (`And`/`Nand`/`Or`/`Nor` accept 2..=4 inputs).
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            GateKind::Input => Some(0),
            GateKind::Output | GateKind::Buf | GateKind::Inv | GateKind::Dff => Some(1),
            GateKind::Xor | GateKind::Xnor => Some(2),
            GateKind::Mux2 | GateKind::Aoi21 | GateKind::Oai21 => Some(3),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => None,
        }
    }

    /// Checks whether `n` input pins are legal for this kind.
    pub fn arity_ok(self, n: usize) -> bool {
        match self.fixed_arity() {
            Some(k) => n == k,
            None => (2..=4).contains(&n),
        }
    }

    /// Evaluates the gate function bitwise over 64-pattern words.
    ///
    /// `Input` evaluates to 0 (inputs are driven externally); `Output` and
    /// `Dff` pass their data pin through (the two-frame semantics of flops
    /// are handled by the simulator, not here).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the kind.
    pub fn eval(self, inputs: &[u64]) -> u64 {
        debug_assert!(
            self == GateKind::Input || self.arity_ok(inputs.len()),
            "bad arity {} for {:?}",
            inputs.len(),
            self
        );
        match self {
            GateKind::Input => 0,
            GateKind::Output | GateKind::Buf | GateKind::Dff => inputs[0],
            GateKind::Inv => !inputs[0],
            GateKind::And => inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Nand => !inputs.iter().fold(!0u64, |a, &b| a & b),
            GateKind::Or => inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Nor => !inputs.iter().fold(0u64, |a, &b| a | b),
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Mux2 => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
            GateKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            GateKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
        }
    }

    /// A relative area weight (in NAND2-equivalents) used by the partitioners
    /// for area balancing.
    pub fn area(self) -> f32 {
        match self {
            GateKind::Input | GateKind::Output => 0.0,
            GateKind::Buf | GateKind::Inv => 0.7,
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => 1.0,
            GateKind::Xor | GateKind::Xnor => 1.8,
            GateKind::Mux2 | GateKind::Aoi21 | GateKind::Oai21 => 1.5,
            GateKind::Dff => 4.5,
        }
    }

    /// All gate kinds, in declaration order. Handy for exhaustive tests.
    pub const ALL: [GateKind; 14] = [
        GateKind::Input,
        GateKind::Output,
        GateKind::Buf,
        GateKind::Inv,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux2,
        GateKind::Aoi21,
        GateKind::Oai21,
        GateKind::Dff,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::Output => "OUTPUT",
            GateKind::Buf => "BUF",
            GateKind::Inv => "INV",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux2 => "MUX2",
            GateKind::Aoi21 => "AOI21",
            GateKind::Oai21 => "OAI21",
            GateKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_single_bit() {
        // Exercise every kind on exhaustive single-bit inputs.
        for a in [0u64, 1] {
            for b in [0u64, 1] {
                assert_eq!(GateKind::And.eval(&[a, b]) & 1, a & b);
                assert_eq!(GateKind::Nand.eval(&[a, b]) & 1, 1 ^ (a & b));
                assert_eq!(GateKind::Or.eval(&[a, b]) & 1, a | b);
                assert_eq!(GateKind::Nor.eval(&[a, b]) & 1, 1 ^ (a | b));
                assert_eq!(GateKind::Xor.eval(&[a, b]) & 1, a ^ b);
                assert_eq!(GateKind::Xnor.eval(&[a, b]) & 1, 1 ^ a ^ b);
                for c in [0u64, 1] {
                    assert_eq!(
                        GateKind::Mux2.eval(&[a, b, c]) & 1,
                        if a == 0 { b } else { c }
                    );
                    assert_eq!(GateKind::Aoi21.eval(&[a, b, c]) & 1, 1 ^ ((a & b) | c));
                    assert_eq!(GateKind::Oai21.eval(&[a, b, c]) & 1, 1 ^ ((a | b) & c));
                }
            }
        }
        assert_eq!(GateKind::Inv.eval(&[0]) & 1, 1);
        assert_eq!(GateKind::Buf.eval(&[0b101]), 0b101);
    }

    #[test]
    fn variadic_gates_accept_two_to_four_inputs() {
        assert_eq!(GateKind::And.eval(&[!0, !0, !0, 0]), 0);
        assert_eq!(GateKind::Or.eval(&[0, 0, 1]), 1);
        assert!(GateKind::And.arity_ok(3));
        assert!(!GateKind::And.arity_ok(5));
        assert!(!GateKind::Xor.arity_ok(3));
    }

    #[test]
    fn bitwise_parallelism_matches_scalar() {
        // Evaluating a word must equal evaluating each bit lane separately.
        let a = 0xDEAD_BEEF_0123_4567u64;
        let b = 0x0F0F_F0F0_AAAA_5555u64;
        let word = GateKind::Xnor.eval(&[a, b]);
        for bit in 0..64 {
            let la = (a >> bit) & 1;
            let lb = (b >> bit) & 1;
            assert_eq!((word >> bit) & 1, GateKind::Xnor.eval(&[la, lb]) & 1);
        }
    }

    #[test]
    fn metadata_is_consistent() {
        for kind in GateKind::ALL {
            if let Some(n) = kind.fixed_arity() {
                assert!(kind.arity_ok(n));
            }
            assert!(kind.area() >= 0.0);
            assert!(!format!("{kind}").is_empty());
        }
        assert!(GateKind::Dff.has_output());
        assert!(!GateKind::Output.has_output());
    }
}
