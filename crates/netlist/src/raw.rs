//! Unchecked construction escape hatch for static-analysis tooling.
//!
//! The builder and parser APIs guarantee every [`Netlist`] invariant; the
//! `m3d-lint` crate, by contrast, must be able to *see* broken netlists to
//! report them, and its mutation tests must construct specific corruptions
//! on purpose. This module builds netlists without any validation.
//!
//! Anything assembled here may violate every invariant the rest of the
//! workspace relies on (dangling references, cycles, cross-reference
//! mismatches). Feed such netlists only to [`crate::check`] / `m3d-lint`;
//! simulation or graph extraction over them may panic.

use crate::gate::GateKind;
use crate::ids::{GateId, NetId};
use crate::netlist::{Gate, Net, Netlist};

/// Constructs a gate with an arbitrary pin list and output, unchecked.
pub fn gate(kind: GateKind, inputs: &[NetId], output: Option<NetId>) -> Gate {
    Gate::new(kind, inputs.to_vec(), output)
}

/// Constructs a net with an arbitrary driver and sink list, unchecked.
pub fn net(driver: GateId, sinks: &[(GateId, u8)]) -> Net {
    let mut n = Net::new(driver);
    for &(g, pin) in sinks {
        n.add_sink(g, pin);
    }
    n
}

/// Assembles a [`Netlist`] without validation.
///
/// Topological data is computed best-effort: gates on combinational cycles
/// or with out-of-range references are simply left out of
/// [`Netlist::topo_order`] with level 0.
pub fn netlist(name: impl Into<String>, gates: Vec<Gate>, nets: Vec<Net>) -> Netlist {
    Netlist::from_parts_unchecked(name.into(), gates, nets)
}

/// Decomposes a netlist into its raw parts for targeted corruption.
pub fn parts_of(netlist: Netlist) -> (String, Vec<Gate>, Vec<Net>) {
    netlist.into_parts()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchecked_netlist_accepts_invalid_structure() {
        // A combinational-only design with a dangling net: rejected by the
        // builder, representable here.
        let gates = vec![
            gate(GateKind::Input, &[], Some(NetId::new(0))),
            gate(GateKind::Inv, &[NetId::new(0)], Some(NetId::new(1))),
        ];
        let nets = vec![
            net(GateId::new(0), &[(GateId::new(1), 0)]),
            net(GateId::new(1), &[]),
        ];
        let nl = netlist("broken", gates, nets);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.flops().len(), 0);
        assert!(!crate::check::check_netlist(&nl).is_empty());
    }

    #[test]
    fn cyclic_unchecked_netlist_still_builds() {
        let gates = vec![
            gate(GateKind::Buf, &[NetId::new(1)], Some(NetId::new(0))),
            gate(GateKind::Buf, &[NetId::new(0)], Some(NetId::new(1))),
        ];
        let nets = vec![
            net(GateId::new(0), &[(GateId::new(1), 0)]),
            net(GateId::new(1), &[(GateId::new(0), 0)]),
        ];
        let nl = netlist("cycle", gates, nets);
        // Both gates sit on the cycle: neither is topologically placeable.
        assert!(nl.topo_order().is_empty());
    }

    #[test]
    fn round_trip_through_parts_preserves_structure() {
        let mut b = crate::builder::NetlistBuilder::new("t");
        let a = b.add_input("a");
        let q = b.add_dff(a);
        b.add_output("q", q);
        let orig = b.finish().unwrap();
        let n = orig.gate_count();
        let (name, gates, nets) = parts_of(orig);
        let back = netlist(name, gates, nets);
        assert_eq!(back.gate_count(), n);
        assert!(crate::check::check_netlist(&back).is_empty());
    }
}
