//! Fault-site enumeration.
//!
//! Every gate pin is a potential transition-delay fault site, exactly as in
//! the paper's heterogeneous graph ("each fault site, i.e. every pin of a
//! gate, forms a node"). MIV sites are appended by the `m3d-part` crate once
//! the design is partitioned.

use crate::gate::GateKind;
use crate::ids::{GateId, SiteId};
use crate::netlist::Netlist;

/// The physical position of a fault site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SitePos {
    /// The output pin of a gate.
    Output(GateId),
    /// Input pin `pin` of a gate.
    Input(GateId, u8),
    /// The `index`-th monolithic inter-tier via (appended after partitioning).
    Miv(u32),
}

impl SitePos {
    /// The gate this site belongs to, or `None` for MIV sites.
    #[inline]
    pub fn gate(self) -> Option<GateId> {
        match self {
            SitePos::Output(g) | SitePos::Input(g, _) => Some(g),
            SitePos::Miv(_) => None,
        }
    }
}

/// A dense table mapping [`SiteId`] to [`SitePos`] and back.
///
/// Layout: for each gate in id order, first its input pins (pin order), then
/// its output pin if it drives a net; MIV sites follow all pin sites.
///
/// # Examples
///
/// ```
/// use m3d_netlist::{GateKind, NetlistBuilder, SiteTable, SitePos};
///
/// # fn main() -> Result<(), m3d_netlist::BuildNetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.add_input("a");
/// let q = b.add_dff(a);
/// b.add_output("q", q);
/// let nl = b.finish()?;
/// let sites = SiteTable::from_netlist(&nl);
/// // input pin: 1 output site; dff: D + Q; output cell: 1 input pin.
/// assert_eq!(sites.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SiteTable {
    positions: Vec<SitePos>,
    /// Per gate, the first site id of its pin block.
    gate_base: Vec<u32>,
    /// Number of pin sites (MIV sites start at this index).
    pin_sites: usize,
}

impl SiteTable {
    /// Enumerates the pin sites of a netlist.
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let mut positions = Vec::new();
        let mut gate_base = Vec::with_capacity(netlist.gate_count());
        for (i, g) in netlist.gates().iter().enumerate() {
            let id = GateId::new(i);
            gate_base.push(positions.len() as u32);
            for pin in 0..g.inputs().len() {
                positions.push(SitePos::Input(id, pin as u8));
            }
            if g.kind().has_output() {
                positions.push(SitePos::Output(id));
            }
        }
        let pin_sites = positions.len();
        SiteTable {
            positions,
            gate_base,
            pin_sites,
        }
    }

    /// Appends `count` MIV sites (called by the partitioner).
    pub fn with_mivs(mut self, count: usize) -> Self {
        debug_assert_eq!(
            self.positions.len(),
            self.pin_sites,
            "MIV sites may only be appended once"
        );
        for i in 0..count {
            self.positions.push(SitePos::Miv(i as u32));
        }
        self
    }

    /// Total number of sites (pins plus MIVs).
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the table has no sites.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of pin sites; MIV sites occupy ids `pin_site_count()..len()`.
    #[inline]
    pub fn pin_site_count(&self) -> usize {
        self.pin_sites
    }

    /// The position of a site.
    #[inline]
    pub fn pos(&self, site: SiteId) -> SitePos {
        self.positions[site.index()]
    }

    /// The site id of input pin `pin` of `gate`.
    ///
    /// # Panics
    ///
    /// Panics if the pin does not exist.
    #[inline]
    pub fn input_site(&self, gate: GateId, pin: u8) -> SiteId {
        let s = SiteId(self.gate_base[gate.index()] + u32::from(pin));
        debug_assert_eq!(self.pos(s), SitePos::Input(gate, pin));
        s
    }

    /// The site id of the output pin of `gate`, or `None` for `Output` cells.
    #[inline]
    pub fn output_site(&self, netlist: &Netlist, gate: GateId) -> Option<SiteId> {
        let g = netlist.gate(gate);
        g.kind()
            .has_output()
            .then(|| SiteId(self.gate_base[gate.index()] + g.inputs().len() as u32))
    }

    /// The site id of the `index`-th MIV.
    ///
    /// # Panics
    ///
    /// Panics if fewer MIV sites were appended.
    #[inline]
    pub fn miv_site(&self, index: usize) -> SiteId {
        let s = SiteId::new(self.pin_sites + index);
        assert!(
            s.index() < self.positions.len(),
            "MIV index {index} out of range"
        );
        s
    }

    /// Iterates over `(SiteId, SitePos)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, SitePos)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (SiteId::new(i), p))
    }
}

/// Classifies whether a site sits on a gate output (used as the `Out`
/// feature in the paper's Table I/II).
pub fn is_output_site(pos: SitePos) -> bool {
    matches!(pos, SitePos::Output(_))
}

// `GateKind` is re-checked here to keep the invariant local.
const _: fn(GateKind) -> bool = GateKind::has_output;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn nl() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let x = b.add_gate(GateKind::Nand, &[a, c]);
        let q = b.add_dff(x);
        b.add_output("q", q);
        b.finish().unwrap()
    }

    #[test]
    fn site_layout_is_dense_and_consistent() {
        let netlist = nl();
        let t = SiteTable::from_netlist(&netlist);
        // inputs: 2 outputs; nand: 2 in + 1 out; dff: 1 in + 1 out; output: 1 in
        assert_eq!(t.len(), 2 + 3 + 2 + 1);
        assert_eq!(t.pin_site_count(), t.len());
        for (id, pos) in t.iter() {
            match pos {
                SitePos::Input(g, p) => assert_eq!(t.input_site(g, p), id),
                SitePos::Output(g) => {
                    assert_eq!(t.output_site(&netlist, g), Some(id))
                }
                SitePos::Miv(_) => unreachable!("no MIVs yet"),
            }
        }
    }

    #[test]
    fn miv_sites_append_after_pins() {
        let netlist = nl();
        let t = SiteTable::from_netlist(&netlist).with_mivs(3);
        assert_eq!(t.len(), t.pin_site_count() + 3);
        assert_eq!(t.pos(t.miv_site(2)), SitePos::Miv(2));
        assert!(!is_output_site(t.pos(t.miv_site(0))));
    }

    #[test]
    fn output_cells_have_no_output_site() {
        let netlist = nl();
        let t = SiteTable::from_netlist(&netlist);
        let out_cell = netlist.outputs()[0];
        assert_eq!(t.output_site(&netlist, out_cell), None);
        assert_eq!(
            t.pos(t.input_site(out_cell, 0)),
            SitePos::Input(out_cell, 0)
        );
    }
}
