//! Function-preserving netlist transforms.
//!
//! The paper's oversampling algorithm for the GNN-based Classifier
//! synthesizes minority-class samples by "appending one buffer at the output
//! of each node, one at a time". [`insert_buffer_after`] is that transform:
//! it splits a gate's output net with a non-inverting buffer, leaving the
//! circuit function untouched while perturbing the graph topology.

use crate::gate::GateKind;
use crate::ids::{GateId, NetId};
use crate::netlist::{Gate, Net, Netlist};

/// Inserts a buffer after the output of `gate`, moving all existing fan-out
/// branches onto the buffered net.
///
/// Returns the new netlist and the [`GateId`] of the inserted buffer.
/// Returns `None` if `gate` drives nothing (an `Output` pseudo cell).
///
/// # Examples
///
/// ```
/// use m3d_netlist::{GateKind, NetlistBuilder};
/// use m3d_netlist::transform::insert_buffer_after;
/// use m3d_netlist::GateId;
///
/// # fn main() -> Result<(), m3d_netlist::BuildNetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// let a = b.add_input("a");
/// let x = b.add_gate(GateKind::Inv, &[a]);
/// let q = b.add_dff(x);
/// b.add_output("q", q);
/// let nl = b.finish()?;
/// let n = nl.gate_count();
/// let (buffered, _buf) = insert_buffer_after(nl, GateId::new(1)).expect("inv drives a net");
/// assert_eq!(buffered.gate_count(), n + 1);
/// # Ok(())
/// # }
/// ```
pub fn insert_buffer_after(netlist: Netlist, gate: GateId) -> Option<(Netlist, GateId)> {
    let out_net = netlist.gate(gate).output()?;
    let name = netlist.name().to_owned();
    let (_, mut gates, mut nets) = netlist.into_parts();

    let buf_id = GateId::new(gates.len());
    let new_net = NetId::new(nets.len());

    // Move the original sinks to the buffered net.
    let mut moved = Net::new(buf_id);
    for &(sink, pin) in nets[out_net.index()].sinks() {
        moved.add_sink(sink, pin);
        // Rewire the sink gate's input reference.
        let g = &mut gates[sink.index()];
        let mut inputs = g.inputs().to_vec();
        inputs[pin as usize] = new_net;
        *g = Gate::new(g.kind(), inputs, g.output());
    }
    nets.push(moved);
    // The original net now feeds only the buffer.
    nets[out_net.index()] = {
        let mut n = Net::new(gate);
        n.add_sink(buf_id, 0);
        n
    };
    gates.push(Gate::new(GateKind::Buf, vec![out_net], Some(new_net)));

    let rebuilt =
        Netlist::from_parts(name, gates, nets).expect("buffer insertion preserves validity");
    debug_assert!(
        crate::check::check_netlist(&rebuilt).is_empty(),
        "buffer insertion produced a netlist failing DRC"
    );
    Some((rebuilt, buf_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::generate::{Benchmark, GenParams};

    #[test]
    fn buffer_insertion_preserves_topology_invariants() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let n_before = nl.gate_count();
        let target = nl.topo_order()[n_before % nl.topo_order().len()];
        let (after, buf) = insert_buffer_after(nl, target).expect("combinational gate");
        assert_eq!(after.gate_count(), n_before + 1);
        assert_eq!(after.gate(buf).kind(), GateKind::Buf);
        // The buffer's single fan-in is the original gate.
        assert_eq!(after.fanin_gates(buf).next(), Some(target));
    }

    #[test]
    fn output_cells_cannot_be_buffered() {
        let mut b = NetlistBuilder::new("t");
        let a = b.add_input("a");
        let q = b.add_dff(a);
        let out = b.add_output("q", q);
        let nl = b.finish().unwrap();
        assert!(insert_buffer_after(nl, out).is_none());
    }

    #[test]
    fn repeated_insertion_grows_chains() {
        let mut b = NetlistBuilder::new("t");
        let a = b.add_input("a");
        let x = b.add_gate(GateKind::Inv, &[a]);
        let q = b.add_dff(x);
        b.add_output("q", q);
        let mut nl = b.finish().unwrap();
        let inv = GateId::new(1);
        for expected in 0..3 {
            assert_eq!(nl.gate_count(), 4 + expected);
            let (next, _) = insert_buffer_after(nl, inv).unwrap();
            nl = next;
        }
    }
}
