//! Plain-text netlist serialization.
//!
//! A minimal line-oriented structural format, lossless for everything this
//! workspace models:
//!
//! ```text
//! # comment
//! design aes
//! g0 INPUT -> n0
//! g1 INPUT -> n1
//! g2 NAND n0 n1 -> n2
//! g3 DFF n2 -> n3
//! g4 OUTPUT n3
//! ```
//!
//! Gates appear in [`GateId`] order; `n<k>` names net `k`
//! in [`NetId`] order. The reader validates exactly like
//! [`NetlistBuilder::finish`](crate::NetlistBuilder::finish).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::gate::GateKind;
use crate::ids::{GateId, NetId};
use crate::netlist::{Gate, Net, Netlist};
use crate::BuildNetlistError;

/// Error raised while parsing the text netlist format.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseNetlistError {
    /// The `design <name>` header line is missing.
    MissingHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Gates were valid individually but the netlist failed validation.
    Invalid(BuildNetlistError),
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetlistError::MissingHeader => {
                write!(f, "missing `design <name>` header")
            }
            ParseNetlistError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseNetlistError::Invalid(e) => {
                write!(f, "invalid netlist: {e}")
            }
        }
    }
}

impl Error for ParseNetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseNetlistError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildNetlistError> for ParseNetlistError {
    fn from(e: BuildNetlistError) -> Self {
        ParseNetlistError::Invalid(e)
    }
}

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Input => "INPUT",
        GateKind::Output => "OUTPUT",
        GateKind::Buf => "BUF",
        GateKind::Inv => "INV",
        GateKind::And => "AND",
        GateKind::Nand => "NAND",
        GateKind::Or => "OR",
        GateKind::Nor => "NOR",
        GateKind::Xor => "XOR",
        GateKind::Xnor => "XNOR",
        GateKind::Mux2 => "MUX2",
        GateKind::Aoi21 => "AOI21",
        GateKind::Oai21 => "OAI21",
        GateKind::Dff => "DFF",
    }
}

impl FromStr for GateKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GateKind::ALL
            .into_iter()
            .find(|&k| kind_name(k) == s)
            .ok_or_else(|| format!("unknown gate kind `{s}`"))
    }
}

/// Serializes a netlist to the text format.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::{Benchmark, GenParams};
/// use m3d_netlist::io::{read_netlist, write_netlist};
///
/// # fn main() -> Result<(), m3d_netlist::io::ParseNetlistError> {
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let text = write_netlist(&nl);
/// let back = read_netlist(&text)?;
/// assert_eq!(back.gate_count(), nl.gate_count());
/// # Ok(())
/// # }
/// ```
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::with_capacity(netlist.gate_count() * 24);
    out.push_str("# m3d-netlist v1\n");
    out.push_str(&format!("design {}\n", netlist.name()));
    for (i, g) in netlist.gates().iter().enumerate() {
        out.push_str(&format!("g{i} {}", kind_name(g.kind())));
        for net in g.inputs() {
            out.push_str(&format!(" n{}", net.index()));
        }
        if let Some(o) = g.output() {
            out.push_str(&format!(" -> n{}", o.index()));
        }
        out.push('\n');
    }
    out
}

/// Parses the text format back into a validated [`Netlist`].
///
/// A successfully parsed netlist is *lint-clean by construction*: the full
/// fatal subset of [`crate::check`] runs during reconstruction (undriven or
/// multi-driven nets are additionally caught while rebuilding the driver
/// table), so `read_netlist(write_netlist(n))` can never yield a netlist
/// that later passes choke on.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on malformed lines, dangling references,
/// or a netlist failing the structural design-rule checks.
pub fn read_netlist(text: &str) -> Result<Netlist, ParseNetlistError> {
    let mut name: Option<String> = None;
    // Collected per gate: (kind, input nets, output net).
    let mut raw: Vec<(GateKind, Vec<u32>, Option<u32>)> = Vec::new();
    let mut max_net: Option<u32> = None;

    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        let lineno = ln + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("design ") {
            name = Some(rest.trim().to_owned());
            continue;
        }
        let bad = |reason: &str| ParseNetlistError::BadLine {
            line: lineno,
            reason: reason.to_owned(),
        };
        let mut tokens = line.split_whitespace();
        let gate_tok = tokens.next().ok_or_else(|| bad("empty gate line"))?;
        let expect_id = format!("g{}", raw.len());
        if gate_tok != expect_id {
            return Err(bad(&format!(
                "expected `{expect_id}` (gates must appear in id order), got `{gate_tok}`"
            )));
        }
        let kind: GateKind = tokens
            .next()
            .ok_or_else(|| bad("missing gate kind"))?
            .parse()
            .map_err(|e: String| bad(&e))?;
        let mut inputs = Vec::new();
        let mut output = None;
        let mut arrow_seen = false;
        for tok in tokens {
            if tok == "->" {
                arrow_seen = true;
                continue;
            }
            let idx: u32 = tok
                .strip_prefix('n')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(&format!("bad net token `{tok}`")))?;
            max_net = Some(max_net.map_or(idx, |m: u32| m.max(idx)));
            if arrow_seen {
                if output.is_some() {
                    return Err(bad("multiple output nets"));
                }
                output = Some(idx);
            } else {
                inputs.push(idx);
            }
        }
        if kind.has_output() && output.is_none() {
            return Err(bad("driving gate missing `-> n<k>`"));
        }
        raw.push((kind, inputs, output));
    }

    let name = name.ok_or(ParseNetlistError::MissingHeader)?;
    let net_count = max_net.map_or(0, |m| m as usize + 1);

    // Reconstruct nets: the gate with `-> n<k>` drives net k.
    let mut drivers: Vec<Option<GateId>> = vec![None; net_count];
    for (i, (_, _, out)) in raw.iter().enumerate() {
        if let Some(o) = out {
            if drivers[*o as usize].is_some() {
                return Err(ParseNetlistError::BadLine {
                    line: 0,
                    reason: format!("net n{o} has two drivers"),
                });
            }
            drivers[*o as usize] = Some(GateId::new(i));
        }
    }
    let mut nets: Vec<Net> = (0..net_count)
        .map(|k| {
            drivers[k].map(Net::new).ok_or(ParseNetlistError::BadLine {
                line: 0,
                reason: format!("net n{k} has no driver"),
            })
        })
        .collect::<Result<_, _>>()?;
    let mut gates: Vec<Gate> = Vec::with_capacity(raw.len());
    for (i, (kind, inputs, output)) in raw.into_iter().enumerate() {
        for (pin, &n) in inputs.iter().enumerate() {
            nets[n as usize].add_sink(GateId::new(i), pin as u8);
        }
        gates.push(Gate::new(
            kind,
            inputs.into_iter().map(NetId).collect(),
            output.map(NetId),
        ));
    }
    let netlist = Netlist::from_parts(name, gates, nets)?;
    debug_assert!(
        crate::check::check_netlist(&netlist)
            .iter()
            .all(|i| !i.is_fatal()),
        "from_parts accepted a netlist the DRC rejects"
    );
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{Benchmark, GenParams};

    #[test]
    fn round_trip_preserves_every_benchmark() {
        for bench in Benchmark::ALL {
            let nl = bench.generate(&GenParams::small(2));
            let text = write_netlist(&nl);
            let back = read_netlist(&text).expect("round trip");
            assert_eq!(back.name(), nl.name());
            assert_eq!(back.gate_count(), nl.gate_count());
            assert_eq!(back.net_count(), nl.net_count());
            for i in 0..nl.gate_count() {
                assert_eq!(back.gate(GateId::new(i)), nl.gate(GateId::new(i)));
            }
            // Round-tripping again is byte-identical (canonical form).
            assert_eq!(write_netlist(&back), text);
        }
    }

    #[test]
    fn header_and_comments_are_handled() {
        let text = "\n# hello\ndesign t\ng0 INPUT -> n0\ng1 DFF n0 -> n1\ng2 OUTPUT n1\n";
        let nl = read_netlist(text).expect("minimal netlist parses");
        assert_eq!(nl.name(), "t");
        assert_eq!(nl.flops().len(), 1);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = read_netlist("g0 INPUT -> n0\n").unwrap_err();
        assert_eq!(err, ParseNetlistError::MissingHeader);
        assert!(err.to_string().contains("design"));
    }

    #[test]
    fn bad_lines_report_position_and_reason() {
        let cases = [
            ("design t\ng1 INPUT -> n0\n", "expected `g0`"),
            ("design t\ng0 FROB -> n0\n", "unknown gate kind"),
            ("design t\ng0 INPUT -> x9\n", "bad net token"),
            ("design t\ng0 BUF n1\n", "missing `->"),
        ];
        for (text, needle) in cases {
            let err = read_netlist(text).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "`{msg}` should contain `{needle}`");
        }
    }

    #[test]
    fn structural_validation_still_applies() {
        // Dangling net: n0 never consumed.
        let text = "design t\ng0 INPUT -> n0\ng1 INPUT -> n1\ng2 DFF n1 -> n2\ng3 OUTPUT n2\n";
        let err = read_netlist(text).unwrap_err();
        assert!(matches!(err, ParseNetlistError::Invalid(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn output_cell_with_driver_arrow_is_rejected() {
        // OUTPUT cells drive nothing; a `->` on one must fail DRC, not
        // corrupt later passes.
        let text = "design t\ng0 INPUT -> n0\ng1 DFF n0 -> n1\ng2 OUTPUT n1 -> n2\ng3 BUF n2 -> n3\ng4 OUTPUT n3\n";
        let err = read_netlist(text).unwrap_err();
        assert!(matches!(
            err,
            ParseNetlistError::Invalid(BuildNetlistError::BadOutput { .. })
        ));
    }

    #[test]
    fn two_drivers_are_rejected() {
        let text = "design t\ng0 INPUT -> n0\ng1 INV n0 -> n0\n";
        let err = read_netlist(text).unwrap_err();
        assert!(err.to_string().contains("two drivers"));
    }
}
