//! Strongly-typed identifiers for netlist objects.
//!
//! All identifiers are thin `u32` newtypes ([C-NEWTYPE]): they are `Copy`,
//! order by creation index, and convert to `usize` for table indexing.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw table index.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the identifier as a table index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a gate (including pseudo input/output cells and flip-flops).
    GateId,
    "g"
);
id_type!(
    /// Identifier of a net (a driver output pin plus its fan-out branches).
    NetId,
    "n"
);
id_type!(
    /// Identifier of a fault site (a gate pin, or an MIV once partitioned).
    SiteId,
    "s"
);
id_type!(
    /// Identifier of a D flip-flop, dense over the flops of a netlist.
    FlopId,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        let g = GateId::new(42);
        assert_eq!(g.index(), 42);
        assert_eq!(usize::from(g), 42);
        assert_eq!(format!("{g}"), "g42");
        assert_eq!(format!("{g:?}"), "g42");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NetId::new(1) < NetId::new(2));
        assert_eq!(SiteId::default(), SiteId::new(0));
    }
}
