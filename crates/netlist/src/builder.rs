//! Incremental netlist construction.

use crate::error::BuildNetlistError;
use crate::gate::GateKind;
use crate::ids::{GateId, NetId};
use crate::netlist::{Gate, Net, Netlist};

/// Builds a [`Netlist`] gate by gate ([C-BUILDER]).
///
/// Port names passed to [`add_input`](NetlistBuilder::add_input) and
/// [`add_output`](NetlistBuilder::add_output) document the builder code; the
/// finished netlist identifies ports positionally by [`GateId`].
///
/// # Examples
///
/// ```
/// use m3d_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), m3d_netlist::BuildNetlistError> {
/// let mut b = NetlistBuilder::new("half-adder");
/// let a = b.add_input("a");
/// let c = b.add_input("b");
/// let sum = b.add_gate(GateKind::Xor, &[a, c]);
/// let carry = b.add_gate(GateKind::And, &[a, c]);
/// let q0 = b.add_dff(sum);
/// let q1 = b.add_dff(carry);
/// b.add_output("sum", q0);
/// b.add_output("carry", q1);
/// let netlist = b.finish()?;
/// assert_eq!(netlist.stats().gates, 4);
/// # Ok(())
/// # }
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    nets: Vec<Net>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a design called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            nets: Vec::new(),
        }
    }

    fn push_gate(
        &mut self,
        kind: GateKind,
        inputs: Vec<NetId>,
        drives: bool,
    ) -> (GateId, Option<NetId>) {
        let gid = GateId::new(self.gates.len());
        let out = if drives {
            let nid = NetId::new(self.nets.len());
            self.nets.push(Net::new(gid));
            Some(nid)
        } else {
            None
        };
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].add_sink(gid, pin as u8);
        }
        self.gates.push(Gate::new(kind, inputs, out));
        (gid, out)
    }

    /// Adds a primary input and returns the net it drives.
    pub fn add_input(&mut self, _name: &str) -> NetId {
        self.push_gate(GateKind::Input, Vec::new(), true)
            .1
            .expect("input drives a net")
    }

    /// Adds a combinational gate over `inputs` and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not combinational; arity violations surface as a
    /// [`BuildNetlistError`] from [`finish`](NetlistBuilder::finish).
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert!(kind.is_combinational(), "use add_input/add_dff/add_output");
        self.push_gate(kind, inputs.to_vec(), true)
            .1
            .expect("combinational gate drives a net")
    }

    /// Adds a D flip-flop with data input `d` and returns its `Q` net.
    pub fn add_dff(&mut self, d: NetId) -> NetId {
        self.push_gate(GateKind::Dff, vec![d], true)
            .1
            .expect("flop drives a net")
    }

    /// Adds a primary output sink on `net`.
    pub fn add_output(&mut self, _name: &str, net: NetId) -> GateId {
        self.push_gate(GateKind::Output, vec![net], false).0
    }

    /// Adds a gate whose inputs will be connected later with
    /// [`connect_deferred`](NetlistBuilder::connect_deferred); returns the
    /// output net and the gate id. Useful for feedback-shaped construction
    /// in tests and transforms.
    pub fn add_gate_deferred(&mut self, kind: GateKind, arity: usize) -> (NetId, GateId) {
        assert!(kind.is_combinational(), "deferred gates are combinational");
        let (gid, out) = self.push_gate(kind, Vec::with_capacity(arity), true);
        (out.expect("combinational gate drives a net"), gid)
    }

    /// Connects the inputs of a gate created with
    /// [`add_gate_deferred`](NetlistBuilder::add_gate_deferred).
    ///
    /// # Panics
    ///
    /// Panics if the gate already has inputs connected.
    pub fn connect_deferred(&mut self, gate: GateId, inputs: &[NetId]) {
        assert!(
            self.gates[gate.index()].inputs().is_empty(),
            "gate {gate} already connected"
        );
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].add_sink(gate, pin as u8);
        }
        let kind = self.gates[gate.index()].kind();
        let out = self.gates[gate.index()].output();
        self.gates[gate.index()] = Gate::new(kind, inputs.to_vec(), out);
    }

    /// Number of gates added so far (useful for sizing loops in generators).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Nets that currently have no sinks. Generators sweep these into an
    /// observability register before finishing.
    pub fn dangling_nets(&self) -> Vec<NetId> {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.sinks().is_empty())
            .map(|(i, _)| NetId::new(i))
            .collect()
    }

    /// Validates and freezes the netlist.
    ///
    /// Validation is the fatal subset of [`crate::check`]: dangling nets
    /// (every offender listed in
    /// [`DanglingNets`](BuildNetlistError::DanglingNets)), illegal arities,
    /// illegal output connectivity, connectivity cross-reference mismatches,
    /// combinational cycles, and flop-free designs.
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildNetlistError`] in check order.
    pub fn finish(self) -> Result<Netlist, BuildNetlistError> {
        Netlist::from_parts(self.name, self.gates, self.nets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_gate_count() {
        let mut b = NetlistBuilder::new("t");
        let a = b.add_input("a");
        assert_eq!(b.gate_count(), 1);
        let x = b.add_gate(GateKind::Inv, &[a]);
        let q = b.add_dff(x);
        b.add_output("q", q);
        assert_eq!(b.gate_count(), 4);
        let nl = b.finish().unwrap();
        assert_eq!(nl.gate_count(), 4);
    }

    #[test]
    #[should_panic(expected = "add_input")]
    fn add_gate_rejects_pseudo_kinds() {
        let mut b = NetlistBuilder::new("t");
        let _ = b.add_gate(GateKind::Input, &[]);
    }

    #[test]
    fn deferred_connection_builds_valid_netlist() {
        let mut b = NetlistBuilder::new("t");
        let a = b.add_input("a");
        let c = b.add_input("c");
        let (late, gid) = b.add_gate_deferred(GateKind::And, 2);
        b.connect_deferred(gid, &[a, c]);
        let q = b.add_dff(late);
        b.add_output("q", q);
        let nl = b.finish().unwrap();
        assert_eq!(nl.stats().combinational, 1);
    }
}
