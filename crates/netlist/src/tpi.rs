//! Test-point insertion (the paper's TPI design configuration).
//!
//! The paper inserts up to 1% of the gate count as test points chosen by an
//! ATPG tool. This module inserts *observation points*: scan flops whose D
//! input taps a hard-to-observe net. Observation points do not change the
//! circuit function, but they shorten propagation paths and change how each
//! fault is detected — exactly the perturbation the transferability study
//! needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gate::GateKind;
use crate::ids::NetId;
use crate::netlist::{Gate, Net, Netlist};

/// Inserts observation test points on up to `max_frac` × gate-count nets.
///
/// Candidate nets are ranked by *observation hardness*: deep topological
/// level of the driver and small fan-out. A seeded RNG breaks ties so
/// insertion is deterministic.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::{Benchmark, GenParams};
/// use m3d_netlist::tpi::insert_test_points;
///
/// let nl = Benchmark::Aes.generate(&GenParams::small(1));
/// let before = nl.stats();
/// let tpi = insert_test_points(nl, 0.01, 42);
/// let after = tpi.stats();
/// assert!(after.flops > before.flops);
/// assert!(after.flops <= before.flops + before.gates / 100 + 1);
/// ```
pub fn insert_test_points(netlist: Netlist, max_frac: f64, seed: u64) -> Netlist {
    let stats = netlist.stats();
    let budget = ((stats.gates as f64) * max_frac).floor() as usize;
    if budget == 0 {
        return netlist;
    }

    let mut rng = StdRng::seed_from_u64(seed);
    // Score: driver level (deeper = harder to observe) minus fanout penalty.
    let mut scored: Vec<(i64, NetId)> = (0..netlist.net_count())
        .map(|i| {
            let id = NetId::new(i);
            let net = netlist.net(id);
            let lvl = i64::from(netlist.level(net.driver()));
            let fanout = net.sinks().len() as i64;
            let jitter = rng.gen_range(0..4);
            (lvl * 4 - fanout * 2 + jitter, id)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let picks: Vec<NetId> = scored.into_iter().take(budget).map(|(_, n)| n).collect();

    let name = format!("{}-tpi", netlist.name());
    let (_, mut gates, mut nets) = netlist.into_parts();
    for net in picks {
        // Observation flop: D = tapped net, Q feeds a fresh primary output.
        let flop_id = crate::ids::GateId::new(gates.len());
        let q_net = NetId::new(nets.len());
        nets[net.index()].add_sink(flop_id, 0);
        let mut q = Net::new(flop_id);
        let out_id = crate::ids::GateId::new(gates.len() + 1);
        q.add_sink(out_id, 0);
        nets.push(q);
        gates.push(Gate::new(GateKind::Dff, vec![net], Some(q_net)));
        gates.push(Gate::new(GateKind::Output, vec![q_net], None));
    }
    let rebuilt =
        Netlist::from_parts(name, gates, nets).expect("observation points preserve validity");
    debug_assert!(
        crate::check::check_netlist(&rebuilt).is_empty(),
        "TPI insertion produced a netlist failing DRC"
    );
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{Benchmark, GenParams};

    #[test]
    fn tpi_preserves_combinational_logic() {
        let nl = Benchmark::Tate.generate(&GenParams::small(1));
        let before = nl.stats();
        let tpi = insert_test_points(nl, 0.01, 7);
        let after = tpi.stats();
        assert_eq!(before.combinational, after.combinational);
        assert!(after.flops > before.flops);
        assert!(tpi.name().ends_with("-tpi"));
    }

    #[test]
    fn tpi_is_deterministic() {
        let a = insert_test_points(Benchmark::Aes.generate(&GenParams::small(1)), 0.02, 9);
        let b = insert_test_points(Benchmark::Aes.generate(&GenParams::small(1)), 0.02, 9);
        assert_eq!(a.gate_count(), b.gate_count());
    }

    #[test]
    fn zero_budget_is_identity() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        let n = nl.gate_count();
        let same = insert_test_points(nl, 0.0, 1);
        assert_eq!(same.gate_count(), n);
    }
}
