//! leon3mp-like benchmark: replicated processor cores on a shared bus.
//!
//! The ISPD-2012 `leon3mp` is a multi-core SPARC SoC. Each stand-in core
//! has an ALU (ripple adder + logic unit + result mux), a register file
//! read mux tree, and an FSM with random next-state logic; cores share a
//! bus mux with repeater chains.

use rand::Rng;

use super::Synth;
use crate::gate::GateKind;
use crate::ids::NetId;

/// Datapath width per core.
const W: usize = 8;
/// Registers in each core's register file.
const REGS: usize = 4;
/// Style-independent estimate of gates per core.
const EST_GATES_PER_CORE: usize = 260;

pub(crate) fn build(ctx: &mut Synth) {
    let cores = (ctx.target / EST_GATES_PER_CORE).max(1);

    let op_a: Vec<NetId> = (0..W).map(|i| ctx.b.add_input(&format!("a{i}"))).collect();
    let op_sel: Vec<NetId> = (0..2).map(|i| ctx.b.add_input(&format!("op{i}"))).collect();
    let reg_sel: Vec<NetId> = (0..2).map(|i| ctx.b.add_input(&format!("rs{i}"))).collect();

    let op_sel_q: Vec<NetId> = op_sel.iter().map(|&n| ctx.b.add_dff(n)).collect();
    let reg_sel_q: Vec<NetId> = reg_sel.iter().map(|&n| ctx.b.add_dff(n)).collect();
    let a_q: Vec<NetId> = op_a.iter().map(|&n| ctx.b.add_dff(n)).collect();

    let mut bus: Vec<NetId> = a_q.clone();
    let mut core_results: Vec<Vec<NetId>> = Vec::with_capacity(cores);

    for core in 0..cores {
        // Register file: REGS registers × W bits, shifting data in from the
        // bus with per-register enable derived from the FSM below.
        let regs: Vec<Vec<NetId>> = (0..REGS)
            .map(|r| {
                (0..W)
                    .map(|i| {
                        let rot = bus[(i + r + core) % W];
                        ctx.b.add_dff(rot)
                    })
                    .collect()
            })
            .collect();

        // Read port: per-bit mux tree over the registers.
        let rd: Vec<NetId> = (0..W)
            .map(|i| {
                let leaves: Vec<NetId> = (0..REGS).map(|r| regs[r][i]).collect();
                ctx.mux_tree(&reg_sel_q, &leaves)
            })
            .collect();

        // ALU: ripple adder, AND/XOR logic unit, op-select mux.
        let mut carry = op_sel_q[0];
        let mut add_out: Vec<NetId> = Vec::with_capacity(W);
        for i in 0..W {
            let (s, c) = ctx.full_adder(bus[i], rd[i], carry);
            add_out.push(s);
            carry = c;
        }
        let alu: Vec<NetId> = (0..W)
            .map(|i| {
                let land = ctx.b.add_gate(GateKind::And, &[bus[i], rd[i]]);
                let lxor = ctx.xor(bus[i], rd[i]);
                let logic = ctx.b.add_gate(GateKind::Mux2, &[op_sel_q[1], land, lxor]);
                ctx.b
                    .add_gate(GateKind::Mux2, &[op_sel_q[0], add_out[i], logic])
            })
            .collect();

        // FSM: 3 state flops with random next-state logic over state + flags.
        let flag_zero = {
            let ors = ctx.reduce(GateKind::Or, &alu);
            ctx.b.add_gate(GateKind::Inv, &[ors])
        };
        let mut state_q: Vec<NetId> = Vec::with_capacity(3);
        for s in 0..3 {
            let t1 = alu[(2 * s + core) % W];
            let t2 = bus[(s + 1) % W];
            let nxt = match ctx.arch.gen_range(0..3) {
                0 => ctx.and_or(t1, flag_zero, t2),
                1 => {
                    let x = ctx.xor(t1, t2);
                    ctx.b.add_gate(GateKind::Or, &[x, flag_zero])
                }
                _ => ctx.b.add_gate(GateKind::Oai21, &[t1, t2, flag_zero]),
            };
            state_q.push(ctx.b.add_dff(nxt));
        }

        // Result register, gated by the FSM state parity.
        let gate_sig = ctx.reduce(GateKind::Xor, &state_q);
        let res_q: Vec<NetId> = alu
            .iter()
            .map(|&v| {
                let gated = ctx.b.add_gate(GateKind::And, &[v, gate_sig]);
                let gated = ctx.maybe_buffer(gated);
                ctx.b.add_dff(gated)
            })
            .collect();
        core_results.push(res_q.clone());

        // Bus update: repeater chains from the core back to the shared bus.
        bus = res_q
            .iter()
            .map(|&r| ctx.repeater_chain(r, 6 + core % 3))
            .collect();
    }

    // Shared output bus: mux over core results per bit.
    let out: Vec<NetId> = (0..W)
        .map(|i| {
            let leaves: Vec<NetId> = core_results.iter().map(|r| r[i]).collect();
            if leaves.len() == 1 {
                leaves[0]
            } else {
                ctx.mux_tree(&reg_sel_q, &leaves)
            }
        })
        .collect();
    for (i, &n) in out.iter().enumerate() {
        let q = ctx.b.add_dff(n);
        ctx.b.add_output(&format!("bus{i}"), q);
    }
}

#[cfg(test)]
mod tests {
    use crate::generate::{Benchmark, GenParams};
    use crate::GateKind;

    #[test]
    fn leon3mp_has_mux_trees() {
        let nl = Benchmark::Leon3mp.generate(&GenParams::small(1));
        let muxes = nl
            .gates()
            .iter()
            .filter(|g| g.kind() == GateKind::Mux2)
            .count();
        assert!(muxes >= 24, "regfile/ALU should be mux-rich, got {muxes}");
    }

    #[test]
    fn leon3mp_scales_by_core_replication() {
        let one = Benchmark::Leon3mp.generate(&GenParams::small(1));
        let two = Benchmark::Leon3mp.generate(&GenParams::small(1).with_target(1100));
        assert!(two.stats().flops > one.stats().flops);
    }
}
