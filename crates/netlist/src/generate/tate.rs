//! Tate-pairing-like benchmark: GF(2^m) multiply-accumulate stages.
//!
//! The OpenCores Tate Bilinear Pairing core is dominated by GF(2^m)
//! multipliers. This stand-in builds a pipeline of digit-serial multiplier
//! stages: each stage forms partial products (AND), reduces them with XOR
//! trees including modular feedback taps, and accumulates into a flop bank.

use super::Synth;
use crate::gate::GateKind;
use crate::ids::NetId;

/// Field size (scaled down from GF(2^239)-class fields).
const M: usize = 24;
/// Bit-steps folded into one pipeline stage.
const DIGITS: usize = 4;
/// Style-independent estimate of combinational gates per stage.
const EST_GATES_PER_STAGE: usize = 330;

pub(crate) fn build(ctx: &mut Synth) {
    let stages = (ctx.target / EST_GATES_PER_STAGE).max(1);

    let a_in: Vec<NetId> = (0..M).map(|i| ctx.b.add_input(&format!("a{i}"))).collect();
    let b_in: Vec<NetId> = (0..M).map(|i| ctx.b.add_input(&format!("b{i}"))).collect();

    // Operand registers.
    let a_reg: Vec<NetId> = a_in.iter().map(|&n| ctx.b.add_dff(n)).collect();
    let b_reg: Vec<NetId> = b_in.iter().map(|&n| ctx.b.add_dff(n)).collect();

    // Accumulator starts as a ^ b (gives the first stage transitions).
    let mut acc: Vec<NetId> = (0..M)
        .map(|i| {
            let x = ctx.xor(a_reg[i], b_reg[i]);
            ctx.b.add_dff(x)
        })
        .collect();

    for stage in 0..stages {
        let mut cur: Vec<NetId> = acc.clone();
        for d in 0..DIGITS {
            let bit = b_reg[(stage * DIGITS + d) % M];
            // Partial products: a & b_i.
            let pp: Vec<NetId> = a_reg
                .iter()
                .map(|&a| ctx.b.add_gate(GateKind::And, &[a, bit]))
                .collect();
            // Shift-and-reduce: cur = (cur << 1) ^ pp, with modular feedback
            // taps folding the overflow bit back at fixed positions
            // (x^m = x^t + 1 style pentanomial taps).
            let overflow = cur[M - 1];
            let mut next: Vec<NetId> = Vec::with_capacity(M);
            for i in 0..M {
                let shifted = if i == 0 { overflow } else { cur[i - 1] };
                let mut v = ctx.xor(shifted, pp[i]);
                if i == 3 || i == 7 {
                    // feedback taps
                    v = ctx.xor(v, overflow);
                }
                next.push(v);
            }
            cur = next;
        }
        // Stage flop bank.
        acc = cur
            .into_iter()
            .map(|n| {
                let n = ctx.maybe_buffer(n);
                ctx.b.add_dff(n)
            })
            .collect();
    }

    for (i, &n) in acc.iter().enumerate() {
        ctx.b.add_output(&format!("p{i}"), n);
    }
    // Fold the operand registers into an observable digest so every flop
    // has observable fan-out.
    let digest_a = ctx.reduce(GateKind::Xor, &a_reg);
    let digest_b = ctx.reduce(GateKind::Xor, &b_reg);
    let digest = ctx.xor(digest_a, digest_b);
    let q = ctx.b.add_dff(digest);
    ctx.b.add_output("digest", q);
}

#[cfg(test)]
mod tests {
    use crate::generate::{Benchmark, GenParams};

    #[test]
    fn tate_is_xor_dominated() {
        let nl = Benchmark::Tate.generate(&GenParams::small(1));
        let xorish = nl
            .gates()
            .iter()
            .filter(|g| {
                matches!(
                    g.kind(),
                    crate::GateKind::Xor | crate::GateKind::Xnor | crate::GateKind::Nand
                )
            })
            .count();
        assert!(
            xorish * 2 > nl.stats().combinational,
            "GF arithmetic should be XOR/NAND dominated"
        );
    }
}
