//! Seeded benchmark-circuit generators.
//!
//! The paper evaluates on four synthesized designs: AES and Tate from
//! OpenCores, netcard and leon3mp from the ISPD 2012 suite. Those netlists
//! come out of a proprietary synthesis flow, so this module generates
//! structural stand-ins with the same architectural shape, scaled by a gate
//! target so the full experiment suite runs on one machine (see DESIGN.md §1).
//!
//! Generators are deterministic in `(seed, synth_seed, target_gates)`.
//! `synth_seed` models re-synthesis (the paper's Syn-2 configuration): it
//! changes decomposition choices, tree balancing, and buffering without
//! changing the block architecture.

mod aes;
mod leon3mp;
mod netcard;
mod tate;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::NetlistBuilder;
use crate::gate::GateKind;
use crate::ids::NetId;
use crate::netlist::Netlist;

/// Which benchmark architecture to generate.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::{Benchmark, GenParams};
///
/// let nl = Benchmark::Aes.generate(&GenParams::small(7));
/// assert!(nl.stats().gates > 200);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// AES-like: S-box substitution rounds + key XOR + permutation.
    Aes,
    /// Tate-pairing-like: GF(2^m) multiplier chains with accumulators.
    Tate,
    /// netcard-like: wide datapath, FIFOs, CRC, high-fanout control.
    Netcard,
    /// leon3mp-like: replicated cores (ALU + regfile mux trees + FSM) on a bus.
    Leon3mp,
}

impl Benchmark {
    /// All four benchmarks in paper order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::Aes,
        Benchmark::Tate,
        Benchmark::Netcard,
        Benchmark::Leon3mp,
    ];

    /// The benchmark's display name, as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Aes => "AES",
            Benchmark::Tate => "Tate",
            Benchmark::Netcard => "netcard",
            Benchmark::Leon3mp => "leon3mp",
        }
    }

    /// Default gate-count target preserving the paper's relative sizing
    /// (AES < Tate < netcard < leon3mp).
    pub fn default_target(self) -> usize {
        match self {
            Benchmark::Aes => 1700,
            Benchmark::Tate => 2400,
            Benchmark::Netcard => 3200,
            Benchmark::Leon3mp => 3800,
        }
    }

    /// Generates the benchmark netlist.
    pub fn generate(self, params: &GenParams) -> Netlist {
        let target = params.target_gates.unwrap_or_else(|| self.default_target());
        let mut ctx = Synth::new(self.name(), params, target);
        match self {
            Benchmark::Aes => aes::build(&mut ctx),
            Benchmark::Tate => tate::build(&mut ctx),
            Benchmark::Netcard => netcard::build(&mut ctx),
            Benchmark::Leon3mp => leon3mp::build(&mut ctx),
        }
        ctx.finish()
    }
}

/// Generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenParams {
    /// Architectural seed: fixes block wiring (constant per benchmark).
    pub seed: u64,
    /// Synthesis seed: decomposition/buffering style (varies per config).
    pub synth_seed: u64,
    /// Gate-count target; `None` uses [`Benchmark::default_target`].
    pub target_gates: Option<usize>,
}

impl GenParams {
    /// Parameters at the default size for a given synthesis seed.
    pub fn new(synth_seed: u64) -> Self {
        GenParams {
            seed: SEED_BASE,
            synth_seed,
            target_gates: None,
        }
    }

    /// Small designs for unit tests and doc examples (~300 gates).
    pub fn small(synth_seed: u64) -> Self {
        GenParams {
            seed: SEED_BASE,
            synth_seed,
            target_gates: Some(300),
        }
    }

    /// Overrides the gate-count target.
    pub fn with_target(mut self, target_gates: usize) -> Self {
        self.target_gates = Some(target_gates);
        self
    }
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams::new(1)
    }
}

const SEED_BASE: u64 = 0x4d33_445f_4641_554c; // "M3D_FAUL"

/// Synthesis context shared by the generators: a builder, RNG streams, and a
/// decomposition *style* derived from the synthesis seed.
pub(crate) struct Synth {
    pub(crate) b: NetlistBuilder,
    /// Architectural RNG (wiring permutations; same across configs).
    pub(crate) arch: StdRng,
    /// Synthesis RNG (decomposition choices; varies with `synth_seed`).
    pub(crate) syn: StdRng,
    pub(crate) target: usize,
    style: Style,
}

/// Decomposition style knobs, drawn once from the synthesis seed.
#[derive(Clone, Copy, Debug)]
struct Style {
    /// Probability an XOR is decomposed into NAND4 instead of a native XOR.
    xor_as_nand: f64,
    /// Probability of buffering a multi-fanout net.
    buffer_p: f64,
    /// Prefer skewed (chain) reduction trees over balanced ones.
    skew_trees: bool,
    /// Prefer AOI/OAI complex cells over AND+OR pairs.
    use_complex: f64,
}

impl Synth {
    fn new(name: &str, params: &GenParams, target: usize) -> Self {
        let mut style_rng = StdRng::seed_from_u64(params.synth_seed ^ SEED_BASE);
        let style = Style {
            xor_as_nand: style_rng.gen_range(0.0..0.5),
            buffer_p: style_rng.gen_range(0.05..0.35),
            skew_trees: style_rng.gen_bool(0.5),
            use_complex: style_rng.gen_range(0.1..0.6),
        };
        Synth {
            b: NetlistBuilder::new(name.to_owned()),
            arch: StdRng::seed_from_u64(params.seed),
            syn: StdRng::seed_from_u64(params.synth_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            target,
            style,
        }
    }

    fn finish(mut self) -> Netlist {
        // Sweep dangling nets (e.g. unused S-box mids, final adder carries)
        // into an observability register, as synthesis would with a
        // keep-attribute digest; guarantees every net is observable.
        let dangling = self.b.dangling_nets();
        if !dangling.is_empty() {
            let digest = self.reduce(GateKind::Xor, &dangling);
            let q = self.b.add_dff(digest);
            self.b.add_output("sweep_digest", q);
        }
        let nl = self
            .b
            .finish()
            .expect("generators always produce valid netlists");
        debug_assert!(
            crate::check::check_netlist(&nl).is_empty(),
            "generator produced a netlist failing DRC"
        );
        nl
    }

    /// XOR respecting the synthesis style (native cell or NAND decomposition).
    pub(crate) fn xor(&mut self, a: NetId, c: NetId) -> NetId {
        if self.syn.gen_bool(self.style.xor_as_nand) {
            let n1 = self.b.add_gate(GateKind::Nand, &[a, c]);
            let n2 = self.b.add_gate(GateKind::Nand, &[a, n1]);
            let n3 = self.b.add_gate(GateKind::Nand, &[c, n1]);
            self.b.add_gate(GateKind::Nand, &[n2, n3])
        } else {
            self.b.add_gate(GateKind::Xor, &[a, c])
        }
    }

    /// AND-OR with optional complex-cell mapping: `(a&b)|c` or AOI+INV.
    pub(crate) fn and_or(&mut self, a: NetId, c: NetId, d: NetId) -> NetId {
        if self.syn.gen_bool(self.style.use_complex) {
            let aoi = self.b.add_gate(GateKind::Aoi21, &[a, c, d]);
            self.b.add_gate(GateKind::Inv, &[aoi])
        } else {
            let x = self.b.add_gate(GateKind::And, &[a, c]);
            self.b.add_gate(GateKind::Or, &[x, d])
        }
    }

    /// Reduction tree over `nets` with the given associative 2-input kind.
    /// Balanced or skewed according to style.
    pub(crate) fn reduce(&mut self, kind: GateKind, nets: &[NetId]) -> NetId {
        assert!(!nets.is_empty(), "reduce needs at least one net");
        if nets.len() == 1 {
            return nets[0];
        }
        if self.style.skew_trees {
            let mut acc = nets[0];
            for &n in &nets[1..] {
                acc = if kind == GateKind::Xor {
                    self.xor(acc, n)
                } else {
                    self.b.add_gate(kind, &[acc, n])
                };
            }
            acc
        } else {
            let mut layer: Vec<NetId> = nets.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    next.push(if pair.len() == 2 {
                        if kind == GateKind::Xor {
                            self.xor(pair[0], pair[1])
                        } else {
                            self.b.add_gate(kind, &[pair[0], pair[1]])
                        }
                    } else {
                        pair[0]
                    });
                }
                layer = next;
            }
            layer[0]
        }
    }

    /// Optionally buffers a net (models fanout buffering in synthesis).
    pub(crate) fn maybe_buffer(&mut self, net: NetId) -> NetId {
        if self.syn.gen_bool(self.style.buffer_p) {
            self.b.add_gate(GateKind::Buf, &[net])
        } else {
            net
        }
    }

    /// A parity-preserving chain of inverter pairs (at least `len` cells),
    /// modelling long repeated routes; creates the fault-equivalence-rich
    /// structure that inflates diagnostic resolution on the large designs.
    pub(crate) fn repeater_chain(&mut self, mut net: NetId, len: usize) -> NetId {
        for _ in 0..len.div_ceil(2) {
            let inv = self.b.add_gate(GateKind::Inv, &[net]);
            net = self.b.add_gate(GateKind::Inv, &[inv]);
        }
        net
    }

    /// A random 4-in/4-out substitution block (two logic levels), the
    /// building block of the AES-like S-box layer.
    pub(crate) fn sbox4(&mut self, inp: [NetId; 4]) -> [NetId; 4] {
        let mut mid = Vec::with_capacity(6);
        for _ in 0..6 {
            let i = self.arch.gen_range(0..4);
            let mut j = self.arch.gen_range(0..4);
            if j == i {
                j = (j + 1) % 4;
            }
            let kind = match self.syn.gen_range(0..4) {
                0 => GateKind::Nand,
                1 => GateKind::Nor,
                2 => GateKind::And,
                _ => GateKind::Or,
            };
            mid.push(self.b.add_gate(kind, &[inp[i], inp[j]]));
        }
        let mut out = [inp[0]; 4];
        for (k, slot) in out.iter_mut().enumerate() {
            let a = mid[self.arch.gen_range(0..mid.len())];
            let c = mid[self.arch.gen_range(0..mid.len())];
            let x = self.xor(a, c);
            *slot = self.xor(x, inp[(k + 1) % 4]);
        }
        out
    }

    /// A mux tree selecting one of `leaves`; select bits are consumed LSB
    /// first and reused cyclically if the tree is deeper than `sel`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` or `leaves` is empty.
    pub(crate) fn mux_tree(&mut self, sel: &[NetId], leaves: &[NetId]) -> NetId {
        assert!(!sel.is_empty() && !leaves.is_empty(), "mux_tree needs nets");
        let mut layer: Vec<NetId> = leaves.to_vec();
        let mut si = 0usize;
        while layer.len() > 1 {
            let s = sel[si % sel.len()];
            si += 1;
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.b.add_gate(GateKind::Mux2, &[s, pair[0], pair[1]])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// A ripple-carry adder stage: returns `(sum, carry_out)`.
    pub(crate) fn full_adder(&mut self, a: NetId, c: NetId, cin: NetId) -> (NetId, NetId) {
        let t = self.xor(a, c);
        let sum = self.xor(t, cin);
        let ab = self.b.add_gate(GateKind::And, &[a, c]);
        let carry = self.and_or(t, cin, ab);
        (sum, carry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate_valid_netlists() {
        for bench in Benchmark::ALL {
            let nl = bench.generate(&GenParams::small(1));
            let s = nl.stats();
            assert!(s.gates >= 200, "{}: {} gates", bench.name(), s.gates);
            assert!(s.flops > 8, "{} needs flops for scan", bench.name());
            assert!(s.depth >= 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Benchmark::Tate.generate(&GenParams::small(3));
        let b = Benchmark::Tate.generate(&GenParams::small(3));
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(a.net_count(), b.net_count());
        for i in 0..a.gate_count() {
            let g = crate::ids::GateId::new(i);
            assert_eq!(a.gate(g), b.gate(g));
        }
    }

    #[test]
    fn synth_seed_changes_structure_but_not_architecture_scale() {
        let a = Benchmark::Aes.generate(&GenParams::small(1));
        let b = Benchmark::Aes.generate(&GenParams::small(2));
        // different decomposition → different gate counts…
        assert_ne!(a.gate_count(), b.gate_count());
        // …but the same order of magnitude and same flop-bank architecture.
        let (fa, fb) = (a.stats().flops, b.stats().flops);
        assert_eq!(fa, fb, "flop banks are architectural");
    }

    #[test]
    fn target_scales_design_size() {
        let small = Benchmark::Netcard.generate(&GenParams::small(1));
        let large = Benchmark::Netcard.generate(&GenParams::small(1).with_target(1200));
        assert!(large.stats().gates > small.stats().gates);
    }

    #[test]
    fn paper_relative_sizing_holds_at_defaults() {
        let sizes: Vec<usize> = Benchmark::ALL.iter().map(|b| b.default_target()).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }
}
