//! AES-like benchmark: unrolled substitution-permutation rounds.
//!
//! Architecture (scaled from the 128-bit OpenCores AES): a `W`-bit state,
//! key-XOR layer, S-box substitution layer built from random 4-bit blocks,
//! a fixed bit permutation, and a flop bank per round. The number of rounds
//! is derived from the gate target with a style-independent estimate so the
//! flop-bank architecture is identical across synthesis seeds.

use rand::Rng;

use super::Synth;
use crate::gate::GateKind;
use crate::ids::NetId;

/// State width (scaled from AES's 128 bits).
const W: usize = 32;
/// Style-independent estimate of combinational gates per round.
const EST_GATES_PER_ROUND: usize = 280;

pub(crate) fn build(ctx: &mut Synth) {
    let rounds = (ctx.target / EST_GATES_PER_ROUND).max(1);

    let pt: Vec<NetId> = (0..W).map(|i| ctx.b.add_input(&format!("pt{i}"))).collect();
    let key: Vec<NetId> = (0..W)
        .map(|i| ctx.b.add_input(&format!("key{i}")))
        .collect();

    // Input whitening: state <- DFF(pt ^ key).
    let mut state: Vec<NetId> = Vec::with_capacity(W);
    for i in 0..W {
        let x = ctx.xor(pt[i], key[i]);
        state.push(ctx.b.add_dff(x));
    }
    // Key register bank (round keys are derived from it each round).
    let key_reg: Vec<NetId> = key.iter().map(|&k| ctx.b.add_dff(k)).collect();

    for round in 0..rounds {
        // Round-key derivation: rotation + sparse XOR taps of the key bank.
        let rot = 5 * round + 1;
        let rk: Vec<NetId> = (0..W)
            .map(|i| {
                let a = key_reg[(i + rot) % W];
                let c = key_reg[(i * 3 + round) % W];
                ctx.xor(a, c)
            })
            .collect();

        // S-box substitution layer: W/4 random 4-bit blocks.
        let mut subbed: Vec<NetId> = Vec::with_capacity(W);
        for blk in 0..W / 4 {
            let inp = [
                state[4 * blk],
                state[4 * blk + 1],
                state[4 * blk + 2],
                state[4 * blk + 3],
            ];
            subbed.extend(ctx.sbox4(inp));
        }

        // Fixed permutation (drawn from the architectural stream).
        let mut perm: Vec<usize> = (0..W).collect();
        for i in (1..W).rev() {
            let j = ctx.arch.gen_range(0..=i);
            perm.swap(i, j);
        }

        // Key mixing + next-state flop bank.
        let mut next: Vec<NetId> = Vec::with_capacity(W);
        for i in 0..W {
            let mixed = ctx.xor(subbed[perm[i]], rk[i]);
            let buffered = ctx.maybe_buffer(mixed);
            next.push(ctx.b.add_dff(buffered));
        }
        state = next;
    }

    for (i, &s) in state.iter().enumerate() {
        ctx.b.add_output(&format!("ct{i}"), s);
    }
    // Key bank must also be observable (it feeds every round).
    let parity = ctx.reduce(GateKind::Xor, &key_reg);
    let parity_q = ctx.b.add_dff(parity);
    ctx.b.add_output("key_parity", parity_q);
}

#[cfg(test)]
mod tests {
    use crate::generate::{Benchmark, GenParams};

    #[test]
    fn aes_round_count_scales_with_target() {
        let one = Benchmark::Aes.generate(&GenParams::small(1));
        let big = Benchmark::Aes.generate(&GenParams::small(1).with_target(1200));
        assert!(big.stats().flops > one.stats().flops);
    }

    #[test]
    fn aes_has_wide_io() {
        let nl = Benchmark::Aes.generate(&GenParams::small(1));
        assert_eq!(nl.stats().inputs, 64);
        // 32 ciphertext bits + key parity + optional sweep digest.
        assert!(nl.stats().outputs >= 33);
    }
}
