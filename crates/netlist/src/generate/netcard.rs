//! netcard-like benchmark: wide datapath with FIFOs, CRC, and high-fanout
//! control.
//!
//! The ISPD-2012 `netcard` design is a network controller: packet FIFOs,
//! CRC checksum logic, and wide control distribution. This stand-in builds
//! several banks, each with a shift-register FIFO, tap-select mux trees, a
//! CRC XOR ladder, a heavily-buffered enable network, and long repeater
//! chains — the structure that drives the paper's poor diagnostic
//! resolution on this design (many equivalent candidates along chains).

use rand::Rng;

use super::Synth;
use crate::gate::GateKind;
use crate::ids::NetId;

/// Datapath width per bank.
const W: usize = 8;
/// FIFO depth (flops per lane).
const DEPTH: usize = 4;
/// Style-independent estimate of gates per bank.
const EST_GATES_PER_BANK: usize = 130;

pub(crate) fn build(ctx: &mut Synth) {
    let banks = (ctx.target / EST_GATES_PER_BANK).max(1);

    let data: Vec<NetId> = (0..W).map(|i| ctx.b.add_input(&format!("d{i}"))).collect();
    let sel: Vec<NetId> = (0..3)
        .map(|i| ctx.b.add_input(&format!("sel{i}")))
        .collect();
    let enable = ctx.b.add_input("en");

    // Registered select/enable, shared by every bank (high fan-out control).
    let sel_q: Vec<NetId> = sel.iter().map(|&s| ctx.b.add_dff(s)).collect();
    let en_q = ctx.b.add_dff(enable);

    let mut crc_feedback: Vec<NetId> = Vec::new();
    let mut carry_in: Vec<NetId> = data.clone();

    for bank in 0..banks {
        // Buffered enable spine: one control net repeated into the bank.
        let en_local = ctx.repeater_chain(en_q, 10 + bank % 4);

        // FIFO: W lanes × DEPTH flops, gated by the enable.
        let mut taps: Vec<Vec<NetId>> = Vec::with_capacity(W);
        for &carry in carry_in.iter().take(W) {
            let mut v = ctx.b.add_gate(GateKind::And, &[carry, en_local]);
            let mut lane_taps = Vec::with_capacity(DEPTH);
            for _ in 0..DEPTH {
                v = ctx.b.add_dff(v);
                lane_taps.push(v);
            }
            taps.push(lane_taps);
        }

        // Tap-select mux tree per lane (random tap wiring).
        let mut selected: Vec<NetId> = Vec::with_capacity(W);
        for lane_taps in &taps {
            let mut leaves = lane_taps.clone();
            // pad to 4 leaves with random taps from other lanes
            while leaves.len() < 4 {
                let l = ctx.arch.gen_range(0..taps.len());
                let t = ctx.arch.gen_range(0..DEPTH);
                leaves.push(taps[l][t]);
            }
            selected.push(ctx.mux_tree(&sel_q[..2], &leaves[..4]));
        }

        // CRC ladder: running XOR with rotation taps and feedback.
        let mut crc: Vec<NetId> = Vec::with_capacity(W);
        for (i, &s) in selected.iter().enumerate() {
            let prev = if crc_feedback.is_empty() {
                selected[(i + 3) % W]
            } else {
                crc_feedback[(i + 1) % crc_feedback.len()]
            };
            let x = ctx.xor(s, prev);
            let x = if i % 3 == 0 {
                ctx.repeater_chain(x, 8)
            } else {
                x
            };
            crc.push(x);
        }
        // Bank output register; its D pins observe the CRC logic.
        let crc_q: Vec<NetId> = crc
            .iter()
            .map(|&c| {
                let c = ctx.maybe_buffer(c);
                ctx.b.add_dff(c)
            })
            .collect();
        crc_feedback = crc_q.clone();
        carry_in = crc_q;
    }

    for (i, &n) in carry_in.iter().enumerate() {
        ctx.b.add_output(&format!("crc{i}"), n);
    }
    // Make the select register observable.
    let sel_digest = ctx.reduce(GateKind::Xor, &sel_q);
    let q = ctx.b.add_dff(sel_digest);
    ctx.b.add_output("sel_digest", q);
}

#[cfg(test)]
mod tests {
    use crate::generate::{Benchmark, GenParams};
    use crate::GateKind;

    #[test]
    fn netcard_has_long_repeater_chains() {
        let nl = Benchmark::Netcard.generate(&GenParams::small(1));
        let invs = nl
            .gates()
            .iter()
            .filter(|g| g.kind() == GateKind::Inv)
            .count();
        assert!(
            invs >= 16,
            "expected repeater chains, found {invs} inverters"
        );
    }

    #[test]
    fn netcard_is_flop_heavy() {
        let nl = Benchmark::Netcard.generate(&GenParams::small(1));
        let s = nl.stats();
        assert!(
            s.flops * 4 > s.combinational,
            "FIFO banks make netcard flop-heavy: {s:?}"
        );
    }
}
