//! The gate-level netlist: gates, nets, topological structure and statistics.

use crate::error::BuildNetlistError;
use crate::gate::GateKind;
use crate::ids::{FlopId, GateId, NetId};

/// A gate instance: its kind, input nets (pin order matters) and output net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: Option<NetId>,
}

impl Gate {
    pub(crate) fn new(kind: GateKind, inputs: Vec<NetId>, output: Option<NetId>) -> Self {
        Gate {
            kind,
            inputs,
            output,
        }
    }

    /// The functional kind of the gate.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Input nets in pin order.
    #[inline]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net driven by this gate, if any (`Output` cells drive nothing).
    #[inline]
    pub fn output(&self) -> Option<NetId> {
        self.output
    }
}

/// A net: one driver and a list of `(sink gate, sink pin index)` branches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    driver: GateId,
    sinks: Vec<(GateId, u8)>,
}

impl Net {
    pub(crate) fn new(driver: GateId) -> Self {
        Net {
            driver,
            sinks: Vec::new(),
        }
    }

    pub(crate) fn add_sink(&mut self, gate: GateId, pin: u8) {
        self.sinks.push((gate, pin));
    }

    /// The gate driving this net.
    #[inline]
    pub fn driver(&self) -> GateId {
        self.driver
    }

    /// Fan-out branches as `(sink gate, input pin index)` pairs.
    #[inline]
    pub fn sinks(&self) -> &[(GateId, u8)] {
        &self.sinks
    }
}

/// Aggregate statistics of a netlist, matching the columns of the paper's
/// design matrix (Table III).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetlistStats {
    /// Total gate count (combinational + flops; pseudo I/O cells excluded).
    pub gates: usize,
    /// Combinational gate count.
    pub combinational: usize,
    /// Flip-flop count.
    pub flops: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Net count.
    pub nets: usize,
    /// Maximum combinational depth (levels).
    pub depth: u32,
    /// Total cell area in NAND2 equivalents.
    pub area: f32,
}

/// An immutable, validated gate-level netlist.
///
/// Construct one with [`NetlistBuilder`](crate::NetlistBuilder) or a
/// generator from [`generate`](crate::generate). Validation guarantees:
/// every net has a driver and at least one sink, arities are legal, and the
/// combinational core is acyclic; [`topo_order`](Netlist::topo_order) is a
/// valid evaluation order.
///
/// # Examples
///
/// ```
/// use m3d_netlist::{GateKind, NetlistBuilder};
///
/// # fn main() -> Result<(), m3d_netlist::BuildNetlistError> {
/// let mut b = NetlistBuilder::new("demo");
/// let a = b.add_input("a");
/// let q = b.add_dff(a);
/// let n = b.add_gate(GateKind::Inv, &[q]);
/// b.add_output("y", n);
/// let nl = b.finish()?;
/// assert_eq!(nl.stats().flops, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    nets: Vec<Net>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    flops: Vec<GateId>,
    /// Index into `flops` for each gate that is a flop.
    flop_index: Vec<Option<FlopId>>,
    /// Combinational gates in topological order.
    topo: Vec<GateId>,
    /// Per-gate topological level; sources (PIs, flop outputs) are 0.
    level: Vec<u32>,
}

impl Netlist {
    pub(crate) fn from_parts(
        name: String,
        gates: Vec<Gate>,
        nets: Vec<Net>,
    ) -> Result<Self, BuildNetlistError> {
        // Validation delegates to the shared DRC module so construction-time
        // rules can never drift from what `m3d-lint` checks. Fatal issues
        // map onto `BuildNetlistError` with the historical precedence:
        // per-gate issues, then no-flops, then dangling nets (all offenders
        // collected), then connectivity cross-references, then cycles.
        let issues = crate::check::check_parts(&gates, &nets);
        let mut dangling: Vec<NetId> = Vec::new();
        for issue in &issues {
            use crate::check::StructuralIssue as I;
            match *issue {
                I::BadArity { gate, got } => return Err(BuildNetlistError::BadArity { gate, got }),
                I::UnknownNet { gate, net } => {
                    return Err(BuildNetlistError::UnknownNet { gate, net })
                }
                I::MissingOutput { gate } | I::PseudoOutputDrives { gate } => {
                    return Err(BuildNetlistError::BadOutput { gate })
                }
                I::DanglingNet { net } => dangling.push(net),
                _ => {}
            }
        }
        if issues.contains(&crate::check::StructuralIssue::NoFlops) {
            return Err(BuildNetlistError::NoFlops);
        }
        if !dangling.is_empty() {
            return Err(BuildNetlistError::DanglingNets { nets: dangling });
        }
        for issue in &issues {
            use crate::check::StructuralIssue as I;
            match issue {
                I::BadDriver { net, .. }
                | I::BadSink { net, .. }
                | I::CrossRefMismatch { net }
                | I::DuplicateSink { net, .. } => {
                    return Err(BuildNetlistError::CrossRef { net: *net })
                }
                I::CombinationalCycle { gates } => {
                    return Err(BuildNetlistError::CombinationalCycle { gate: gates[0] })
                }
                _ => {}
            }
        }

        let (topo, level) = levelize(&gates, &nets)?;
        Ok(Netlist::assemble(name, gates, nets, topo, level))
    }

    /// Assembles a netlist *without validation* (see [`crate::raw`]).
    /// Topology is computed best-effort: unplaceable gates (cycles,
    /// out-of-range references) are left out of `topo_order` at level 0.
    pub(crate) fn from_parts_unchecked(name: String, gates: Vec<Gate>, nets: Vec<Net>) -> Self {
        let (topo, level) = levelize_lenient(&gates, &nets);
        Netlist::assemble(name, gates, nets, topo, level)
    }

    fn assemble(
        name: String,
        gates: Vec<Gate>,
        nets: Vec<Net>,
        topo: Vec<GateId>,
        level: Vec<u32>,
    ) -> Self {
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut flops = Vec::new();
        let mut flop_index = vec![None; gates.len()];
        for (i, g) in gates.iter().enumerate() {
            let id = GateId::new(i);
            match g.kind {
                GateKind::Input => inputs.push(id),
                GateKind::Output => outputs.push(id),
                GateKind::Dff => {
                    flop_index[i] = Some(FlopId::new(flops.len()));
                    flops.push(id);
                }
                _ => {}
            }
        }
        Netlist {
            name,
            gates,
            nets,
            inputs,
            outputs,
            flops,
            flop_index,
            topo,
            level,
        }
    }

    /// The design name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates, indexed by [`GateId`].
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All nets, indexed by [`NetId`].
    #[inline]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The gate with the given id.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The net with the given id.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Primary-input pseudo cells.
    #[inline]
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary-output pseudo cells.
    #[inline]
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Flip-flops in [`FlopId`] order.
    #[inline]
    pub fn flops(&self) -> &[GateId] {
        &self.flops
    }

    /// The dense flop index of a gate, if the gate is a flip-flop.
    #[inline]
    pub fn flop_of(&self, gate: GateId) -> Option<FlopId> {
        self.flop_index[gate.index()]
    }

    /// Combinational gates in a valid evaluation (topological) order.
    #[inline]
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Topological level of a gate (sources are level 0).
    #[inline]
    pub fn level(&self, gate: GateId) -> u32 {
        self.level[gate.index()]
    }

    /// Number of gates (of any kind, including pseudo cells).
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    #[inline]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Computes aggregate statistics (Table III style).
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            flops: self.flops.len(),
            nets: self.nets.len(),
            ..NetlistStats::default()
        };
        for g in &self.gates {
            if g.kind.is_combinational() {
                s.combinational += 1;
            }
            s.area += g.kind.area();
        }
        s.gates = s.combinational + s.flops;
        s.depth = self.level.iter().copied().max().unwrap_or(0);
        s
    }

    /// Iterates over the gates that drive the inputs of `gate`.
    pub fn fanin_gates(&self, gate: GateId) -> impl Iterator<Item = GateId> + '_ {
        self.gate(gate)
            .inputs()
            .iter()
            .map(move |&n| self.net(n).driver())
    }

    /// Iterates over the gates fed by the output of `gate` (empty for
    /// `Output` cells).
    pub fn fanout_gates(&self, gate: GateId) -> impl Iterator<Item = GateId> + '_ {
        self.gate(gate)
            .output()
            .into_iter()
            .flat_map(move |n| self.net(n).sinks().iter().map(|&(g, _)| g))
    }

    /// Decomposes the netlist back into raw parts for transformation
    /// (used by test-point insertion and oversampling transforms).
    pub(crate) fn into_parts(self) -> (String, Vec<Gate>, Vec<Net>) {
        (self.name, self.gates, self.nets)
    }
}

/// Kahn's algorithm over the combinational core. Flop outputs and primary
/// inputs act as sources; flop D pins and primary outputs as sinks.
fn levelize(gates: &[Gate], nets: &[Net]) -> Result<(Vec<GateId>, Vec<u32>), BuildNetlistError> {
    let n = gates.len();
    let mut indeg = vec![0u32; n];
    let mut level = vec![0u32; n];
    let mut queue = std::collections::VecDeque::new();

    for (i, g) in gates.iter().enumerate() {
        if !g.kind.is_combinational() {
            continue;
        }
        // Count only combinational predecessors: inputs driven by
        // combinational gates impose ordering; PI/flop-driven inputs do not.
        let d = g
            .inputs
            .iter()
            .filter(|&&net| {
                gates[nets[net.index()].driver.index()]
                    .kind
                    .is_combinational()
            })
            .count() as u32;
        indeg[i] = d;
        if d == 0 {
            queue.push_back(GateId::new(i));
            level[i] = 1;
        }
    }

    let comb_total = gates.iter().filter(|g| g.kind.is_combinational()).count();
    let mut topo = Vec::with_capacity(comb_total);
    while let Some(id) = queue.pop_front() {
        topo.push(id);
        if let Some(out) = gates[id.index()].output {
            for &(sink, _) in &nets[out.index()].sinks {
                let si = sink.index();
                if !gates[si].kind.is_combinational() {
                    continue;
                }
                level[si] = level[si].max(level[id.index()] + 1);
                indeg[si] -= 1;
                if indeg[si] == 0 {
                    queue.push_back(sink);
                }
            }
        }
    }
    if topo.len() != comb_total {
        // Some combinational gate never reached in-degree 0: a cycle.
        let on_cycle = (0..n)
            .find(|&i| gates[i].kind.is_combinational() && indeg[i] > 0)
            .expect("cycle implies a gate with positive residual in-degree");
        return Err(BuildNetlistError::CombinationalCycle {
            gate: GateId::new(on_cycle),
        });
    }
    Ok((topo, level))
}

/// Bounds-guarded Kahn levelization for unchecked construction: gates on
/// cycles or with dangling references simply never reach in-degree 0 and
/// stay out of the topological order at level 0.
fn levelize_lenient(gates: &[Gate], nets: &[Net]) -> (Vec<GateId>, Vec<u32>) {
    let n = gates.len();
    let is_comb_driver = |net: &NetId| {
        nets.get(net.index())
            .and_then(|nn| gates.get(nn.driver().index()))
            .is_some_and(|g| g.kind.is_combinational())
    };
    let mut indeg = vec![0u32; n];
    let mut level = vec![0u32; n];
    let mut queue = std::collections::VecDeque::new();
    for (i, g) in gates.iter().enumerate() {
        if !g.kind.is_combinational() {
            continue;
        }
        let d = g.inputs.iter().filter(|net| is_comb_driver(net)).count() as u32;
        indeg[i] = d;
        if d == 0 {
            queue.push_back(GateId::new(i));
            level[i] = 1;
        }
    }
    let mut topo = Vec::new();
    while let Some(id) = queue.pop_front() {
        topo.push(id);
        let Some(out) = gates[id.index()].output else {
            continue;
        };
        let Some(net) = nets.get(out.index()) else {
            continue;
        };
        for &(sink, _) in net.sinks() {
            let si = sink.index();
            if si >= n || !gates[si].kind.is_combinational() || indeg[si] == 0 {
                continue;
            }
            level[si] = level[si].max(level[id.index()] + 1);
            indeg[si] -= 1;
            if indeg[si] == 0 {
                queue.push_back(sink);
            }
        }
    }
    (topo, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.add_input("a");
        let bnet = b.add_input("b");
        let x = b.add_gate(GateKind::Nand, &[a, bnet]);
        let q = b.add_dff(x);
        let y = b.add_gate(GateKind::Xor, &[q, a]);
        b.add_output("y", y);
        b.finish().expect("tiny netlist is valid")
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = tiny();
        let pos: std::collections::HashMap<_, _> = nl
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i))
            .collect();
        for &g in nl.topo_order() {
            for pred in nl.fanin_gates(g).collect::<Vec<_>>() {
                if nl.gate(pred).kind().is_combinational() {
                    assert!(pos[&pred] < pos[&g], "{pred} must precede {g}");
                }
            }
        }
    }

    #[test]
    fn stats_count_gates_and_depth() {
        let nl = tiny();
        let s = nl.stats();
        assert_eq!(s.flops, 1);
        assert_eq!(s.combinational, 2);
        assert_eq!(s.gates, 3);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert!(s.depth >= 1);
        assert!(s.area > 0.0);
    }

    #[test]
    fn fanin_fanout_are_inverse_relations() {
        let nl = tiny();
        for i in 0..nl.gate_count() {
            let g = GateId::new(i);
            for f in nl.fanout_gates(g).collect::<Vec<_>>() {
                assert!(
                    nl.fanin_gates(f).any(|p| p == g),
                    "{g} in fanin of its fanout {f}"
                );
            }
        }
    }

    #[test]
    fn cycle_is_rejected() {
        // Build a combinational loop by hand through the builder's raw API.
        let mut b = NetlistBuilder::new("loop");
        let a = b.add_input("a");
        // placeholder net for the feedback arc
        let (fb_net, fb_gate) = b.add_gate_deferred(GateKind::And, 2);
        let x = b.add_gate(GateKind::Or, &[a, fb_net]);
        b.connect_deferred(fb_gate, &[x, a]);
        let q = b.add_dff(x);
        let z = b.add_gate(GateKind::Buf, &[fb_net]);
        b.add_output("z", z);
        b.add_output("q", q);
        let err = b.finish().expect_err("combinational loop must be rejected");
        assert!(matches!(err, BuildNetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn missing_flops_is_rejected() {
        let mut b = NetlistBuilder::new("comb-only");
        let a = b.add_input("a");
        let x = b.add_gate(GateKind::Inv, &[a]);
        b.add_output("y", x);
        assert_eq!(b.finish().unwrap_err(), BuildNetlistError::NoFlops);
    }

    #[test]
    fn dangling_nets_are_rejected_and_all_listed() {
        let mut b = NetlistBuilder::new("dangle");
        let a = b.add_input("a");
        let unused1 = b.add_gate(GateKind::Inv, &[a]);
        let unused2 = b.add_gate(GateKind::Buf, &[a]);
        let q = b.add_dff(a);
        b.add_output("q", q);
        let err = b.finish().unwrap_err();
        let BuildNetlistError::DanglingNets { nets } = err else {
            panic!("expected DanglingNets, got {err:?}");
        };
        assert_eq!(nets, vec![unused1, unused2]);
    }

    #[test]
    fn output_cell_driving_a_net_is_rejected() {
        // Representable only through raw parts; `from_parts` must refuse it.
        let gates = vec![
            crate::raw::gate(GateKind::Input, &[], Some(NetId::new(0))),
            crate::raw::gate(GateKind::Dff, &[NetId::new(0)], Some(NetId::new(1))),
            crate::raw::gate(GateKind::Output, &[NetId::new(1)], Some(NetId::new(2))),
            crate::raw::gate(GateKind::Buf, &[NetId::new(2)], Some(NetId::new(3))),
            crate::raw::gate(GateKind::Output, &[NetId::new(3)], None),
        ];
        let nets = vec![
            crate::raw::net(GateId::new(0), &[(GateId::new(1), 0)]),
            crate::raw::net(GateId::new(1), &[(GateId::new(2), 0)]),
            crate::raw::net(GateId::new(2), &[(GateId::new(3), 0)]),
            crate::raw::net(GateId::new(3), &[(GateId::new(4), 0)]),
        ];
        let err = Netlist::from_parts("bad-po".into(), gates, nets).unwrap_err();
        assert_eq!(
            err,
            BuildNetlistError::BadOutput {
                gate: GateId::new(2)
            }
        );
    }
}
