//! Gate-level netlist substrate for M3D delay-fault diagnosis.
//!
//! This crate is the foundation of the workspace reproducing *"Transferable
//! Graph Neural Network-based Delay-Fault Localization for Monolithic 3D
//! ICs"* (DATE 2022). It provides:
//!
//! * an immutable, validated [`Netlist`] of standard-cell-like gates,
//! * fault-site enumeration over gate pins ([`SiteTable`]),
//! * seeded generators for the paper's four benchmark architectures
//!   ([`generate::Benchmark`]),
//! * plain-text netlist serialization ([`io::write_netlist`] /
//!   [`io::read_netlist`]),
//! * the TPI design-configuration transform ([`tpi::insert_test_points`]),
//! * the dummy-buffer oversampling transform
//!   ([`transform::insert_buffer_after`]).
//!
//! # Examples
//!
//! ```
//! use m3d_netlist::generate::{Benchmark, GenParams};
//!
//! let netlist = Benchmark::Aes.generate(&GenParams::small(1));
//! let stats = netlist.stats();
//! println!("{}: {} gates, depth {}", netlist.name(), stats.gates, stats.depth);
//! assert!(stats.flops > 0);
//! ```

#![warn(missing_docs)]

mod builder;
mod error;
mod gate;
mod ids;
mod netlist;
mod site;

pub mod check;
pub mod generate;
pub mod io;
pub mod raw;
pub mod tpi;
pub mod transform;

pub use builder::NetlistBuilder;
pub use check::StructuralIssue;
pub use error::BuildNetlistError;
pub use gate::GateKind;
pub use ids::{FlopId, GateId, NetId, SiteId};
pub use netlist::{Gate, Net, Netlist, NetlistStats};
pub use site::{is_output_site, SitePos, SiteTable};
