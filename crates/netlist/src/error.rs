//! Error types for netlist construction and transformation.

use std::error::Error;
use std::fmt;

use crate::ids::{GateId, NetId};

/// Error raised while building or validating a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildNetlistError {
    /// A gate was created with an illegal number of input pins.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// Number of pins supplied.
        got: usize,
    },
    /// A gate references a net that does not exist.
    UnknownNet {
        /// The offending gate.
        gate: GateId,
        /// The dangling net reference.
        net: NetId,
    },
    /// A net has no driver or no sinks after construction.
    DanglingNet {
        /// The dangling net.
        net: NetId,
    },
    /// The combinational core contains a cycle (through the listed gate).
    CombinationalCycle {
        /// A gate on the cycle.
        gate: GateId,
    },
    /// The design has no flip-flops, so no scan test is possible.
    NoFlops,
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::BadArity { gate, got } => {
                write!(f, "gate {gate} constructed with illegal arity {got}")
            }
            BuildNetlistError::UnknownNet { gate, net } => {
                write!(f, "gate {gate} references unknown net {net}")
            }
            BuildNetlistError::DanglingNet { net } => {
                write!(f, "net {net} has no driver or no sinks")
            }
            BuildNetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate {gate}")
            }
            BuildNetlistError::NoFlops => write!(f, "design contains no flip-flops"),
        }
    }
}

impl Error for BuildNetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = BuildNetlistError::BadArity {
            gate: GateId::new(3),
            got: 9,
        };
        let msg = format!("{e}");
        assert!(msg.starts_with("gate g3"));
        assert!(!msg.ends_with('.'));
    }
}
