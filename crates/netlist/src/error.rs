//! Error types for netlist construction and transformation.

use std::error::Error;
use std::fmt;

use crate::ids::{GateId, NetId};

/// Error raised while building or validating a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildNetlistError {
    /// A gate was created with an illegal number of input pins.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// Number of pins supplied.
        got: usize,
    },
    /// A gate references a net that does not exist.
    UnknownNet {
        /// The offending gate.
        gate: GateId,
        /// The dangling net reference.
        net: NetId,
    },
    /// One or more nets have no sinks; every offender is listed.
    DanglingNets {
        /// All dangling nets, ascending.
        nets: Vec<NetId>,
    },
    /// A gate's output connectivity is illegal for its kind: a driving gate
    /// without an output net, or an `Output` pseudo cell with one.
    BadOutput {
        /// The offending gate.
        gate: GateId,
    },
    /// A net's driver/sink tables disagree with the gates' pin lists.
    CrossRef {
        /// The inconsistent net.
        net: NetId,
    },
    /// The combinational core contains a cycle (through the listed gate).
    CombinationalCycle {
        /// A gate on the cycle.
        gate: GateId,
    },
    /// The design has no flip-flops, so no scan test is possible.
    NoFlops,
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::BadArity { gate, got } => {
                write!(f, "gate {gate} constructed with illegal arity {got}")
            }
            BuildNetlistError::UnknownNet { gate, net } => {
                write!(f, "gate {gate} references unknown net {net}")
            }
            BuildNetlistError::DanglingNets { nets } => {
                write!(f, "nets without sinks:")?;
                for (i, n) in nets.iter().take(8).enumerate() {
                    write!(f, "{} {n}", if i == 0 { "" } else { "," })?;
                }
                if nets.len() > 8 {
                    write!(f, " (+{} more)", nets.len() - 8)?;
                }
                Ok(())
            }
            BuildNetlistError::BadOutput { gate } => {
                write!(
                    f,
                    "gate {gate} has illegal output connectivity for its kind"
                )
            }
            BuildNetlistError::CrossRef { net } => {
                write!(f, "net {net} connectivity disagrees with gate pin lists")
            }
            BuildNetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate {gate}")
            }
            BuildNetlistError::NoFlops => write!(f, "design contains no flip-flops"),
        }
    }
}

impl Error for BuildNetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = BuildNetlistError::BadArity {
            gate: GateId::new(3),
            got: 9,
        };
        let msg = format!("{e}");
        assert!(msg.starts_with("gate g3"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn dangling_nets_lists_offenders_and_truncates() {
        let few = BuildNetlistError::DanglingNets {
            nets: vec![NetId::new(4), NetId::new(7)],
        };
        assert_eq!(format!("{few}"), "nets without sinks: n4, n7");
        let many = BuildNetlistError::DanglingNets {
            nets: (0..12).map(NetId::new).collect(),
        };
        assert!(format!("{many}").ends_with("(+4 more)"));
    }
}
