//! Back-tracing (Fig. 3) and sub-graph extraction with Table II features.

use std::collections::HashMap;

use m3d_dft::ScanChains;
use m3d_gnn::{GcnGraph, GraphData, Matrix};
use m3d_netlist::{SiteId, SitePos};
use m3d_tdf::{FailureLog, FaultSim};

use crate::graph::HetGraph;

/// Number of node features (the 13 rows of the paper's Table II).
pub const FEATURE_DIM: usize = 13;

/// Extra feature columns appended when the [`HetGraph`] carries SCOAP
/// measures ([`HetGraph::with_scoap`]): normalized CC0, CC1, CO.
pub const SCOAP_FEATURE_DIM: usize = 3;

/// Names of the optional SCOAP feature columns, in column order (these
/// follow the Table II columns when present).
pub const SCOAP_FEATURE_NAMES: [&str; SCOAP_FEATURE_DIM] = [
    "SCOAP 0-controllability (normalized)",
    "SCOAP 1-controllability (normalized)",
    "SCOAP observability (normalized)",
];

/// Human-readable names of the Table II features, in column order.
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "fan-in edges (circuit)",
    "fan-out edges (circuit)",
    "topedges connected",
    "tier-level location",
    "level in topological order",
    "is gate output",
    "connects to MIV",
    "fan-in edges (sub-graph)",
    "fan-out edges (sub-graph)",
    "mean topedge length",
    "std topedge length",
    "mean topedge MIV count",
    "std topedge MIV count",
];

/// A homogeneous sub-graph extracted by back-tracing, ready for the GNN
/// models: node list, induced topology, and the Table II feature matrix.
#[derive(Clone, Debug)]
pub struct SubGraph {
    /// The fault sites retained by back-tracing, ascending.
    pub sites: Vec<SiteId>,
    /// Node features + induced topology for the GCN.
    pub data: GraphData,
    /// MIV nodes within the sub-graph: `(node index, MIV index)`.
    pub miv_nodes: Vec<(usize, u32)>,
}

impl SubGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.sites.len()
    }

    /// The node index of a site, if present.
    pub fn node_of(&self, site: SiteId) -> Option<usize> {
        self.sites.binary_search(&site).ok()
    }

    /// Synthesizes a minority-class sample by appending a dummy buffer at
    /// the output of `node` (the paper's graph oversampling: the circuit
    /// function is unchanged, the topology is perturbed).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn with_dummy_buffer(&self, node: usize) -> SubGraph {
        assert!(node < self.node_count(), "node {node} out of range");
        let n = self.node_count();
        let g = &self.data.graph;
        // New node takes over `node`'s outgoing neighbourhood.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for v in 0..n {
            for &u in g.neighbors(v) {
                let u = u as usize;
                if u <= v {
                    continue; // undirected: visit each pair once
                }
                edges.push((v, u));
            }
        }
        edges.push((node, n)); // buffer hangs off the node
        let mut feats = Matrix::zeros(n + 1, self.data.features.cols());
        for r in 0..n {
            feats.row_mut(r).copy_from_slice(self.data.features.row(r));
        }
        // The buffer inherits locality from its driver but is a fresh
        // single-input single-output gate output.
        let src: Vec<f32> = self.data.features.row(node).to_vec();
        let buf = feats.row_mut(n);
        buf.copy_from_slice(&src);
        buf[0] = 1.0 / 4.0; // one fan-in edge (normalized like extract())
        buf[5] = 1.0; // is a gate output
        SubGraph {
            sites: self.sites.clone(),
            data: GraphData::new(GcnGraph::from_edges(n + 1, &edges), feats),
            miv_nodes: self.miv_nodes.clone(),
        }
    }
}

/// The back-tracing algorithm of Fig. 3: intersects, over every erroneous
/// response, the transition-active fan-in cones of the response's
/// Topnodes; extracts the induced circuit-level sub-graph.
///
/// Returns `None` when the log is empty or the intersection is empty (no
/// single site explains every response — e.g. heavy multi-fault chips).
///
/// # Examples
///
/// See the crate-level example in [`crate`].
pub fn back_trace(
    het: &HetGraph,
    fsim: &FaultSim<'_>,
    scan: &ScanChains,
    log: &FailureLog,
) -> Option<SubGraph> {
    if log.is_empty() {
        return None;
    }
    let mut counts: HashMap<SiteId, u32> = HashMap::new();
    let entries = log.entries();
    for entry in entries {
        let (blk, bit) = fsim.patterns().locate(entry.pattern);
        let mask = 1u64 << bit;
        // N := union over the response's Topnodes of transition-active
        // cone members.
        let mut n_set: HashMap<SiteId, ()> = HashMap::new();
        for flop in scan.candidate_flops(entry.obs) {
            for te in het.topedges(flop) {
                if fsim.transition_mask(te.site, blk) & mask != 0 {
                    n_set.insert(te.site, ());
                }
            }
        }
        for (site, ()) in n_set {
            *counts.entry(site).or_insert(0) += 1;
        }
    }
    let needed = entries.len() as u32;
    // Strict intersection first (Fig. 3, line 11). Multi-fault chips whose
    // responses come from different faults can intersect to nothing; fall
    // back to the best-supported sites so the GNN models still get a
    // sub-graph (the paper's framework keeps predicting tiers for
    // multi-fault chips — Section VII-A).
    let c_max = counts.values().copied().max().unwrap_or(0);
    if c_max == 0 {
        return None;
    }
    // `c_max == needed` is the strict intersection; otherwise keep the
    // best-supported sites.
    let threshold = c_max.min(needed);
    let mut sites: Vec<SiteId> = counts
        .into_iter()
        .filter(|&(_, c)| c >= threshold)
        .map(|(s, _)| s)
        .collect();
    sites.sort_unstable();
    if sites.is_empty() {
        return None;
    }
    Some(extract(het, fsim, sites))
}

/// Builds the sub-graph induced on `sites` with Table II features.
pub fn extract(het: &HetGraph, fsim: &FaultSim<'_>, sites: Vec<SiteId>) -> SubGraph {
    let design = fsim.design();
    let n = sites.len();
    let index: HashMap<u32, usize> = sites.iter().enumerate().map(|(i, s)| (s.0, i)).collect();

    // Induced edges + per-node sub-graph degrees.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut sub_in = vec![0u32; n];
    let mut sub_out = vec![0u32; n];
    for (i, &site) in sites.iter().enumerate() {
        for &succ in het.successors(site) {
            if let Some(&j) = index.get(&succ) {
                edges.push((i, j));
                sub_out[i] += 1;
                sub_in[j] += 1;
            }
        }
    }

    let (max_level, max_dist, flops) = het.normalizers();
    let cols = FEATURE_DIM
        + if het.has_scoap() {
            SCOAP_FEATURE_DIM
        } else {
            0
        };
    let mut feats = Matrix::zeros(n, cols);
    let mut miv_nodes = Vec::new();
    for (i, &site) in sites.iter().enumerate() {
        let f = het.site_features(site);
        let scoap = het.scoap(site);
        let row = feats.row_mut(i);
        row[0] = f32::from(f.fan_in) / 4.0;
        row[1] = (f32::from(f.fan_out) / 8.0).min(2.0);
        row[2] = f.top_edges as f32 / flops.max(1) as f32;
        row[3] = f.tier;
        row[4] = f.level as f32 / max_level;
        row[5] = f32::from(u8::from(f.is_output));
        row[6] = f32::from(u8::from(f.touches_miv));
        row[7] = sub_in[i] as f32 / 4.0;
        row[8] = (sub_out[i] as f32 / 8.0).min(2.0);
        row[9] = f.mean_dist / max_dist;
        row[10] = f.std_dist / max_dist;
        row[11] = (f.mean_mivs / 4.0).min(2.0);
        row[12] = (f.std_mivs / 4.0).min(2.0);
        if let Some([cc0, cc1, co]) = scoap {
            row[13] = cc0;
            row[14] = cc1;
            row[15] = co;
        }
        if let SitePos::Miv(m) = design.sites().pos(site) {
            miv_nodes.push((i, m));
        }
    }

    SubGraph {
        sites,
        data: GraphData::new(GcnGraph::from_edges(n, &edges), feats),
        miv_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_dft::{ObsMode, ScanConfig};
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;
    use m3d_tdf::{generate_patterns, AtpgConfig, Fault, FaultSim, Polarity};

    struct Env {
        design: m3d_part::M3dDesign,
        ts: m3d_tdf::TestSet,
        scan: ScanChains,
        het: HetGraph,
    }

    fn env() -> Env {
        let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let ts = generate_patterns(&design, &AtpgConfig::new(1, 256));
        let scan = ScanChains::new(
            design.netlist(),
            ScanConfig::for_flop_count(design.netlist().flops().len()),
        );
        let het = HetGraph::new(&design);
        Env {
            design,
            ts,
            scan,
            het,
        }
    }

    fn some_detected_fault(e: &Env, skip: usize) -> Fault {
        m3d_tdf::full_fault_list(&e.design)
            .into_iter()
            .zip(&e.ts.detected)
            .filter(|&(_, &d)| d)
            .map(|(f, _)| f)
            .nth(skip)
            .expect("detected fault exists")
    }

    #[test]
    fn back_tracing_keeps_the_injected_site() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        for skip in [0, 33, 77, 150] {
            let fault = some_detected_fault(&e, skip);
            let mut det = fsim.detector();
            let dets = fsim.detections(&mut det, &[fault]);
            for mode in ObsMode::ALL {
                let log = FailureLog::from_detections(&dets, &e.scan, mode);
                if log.is_empty() {
                    continue;
                }
                let sg =
                    back_trace(&e.het, &fsim, &e.scan, &log).expect("single-fault logs back-trace");
                assert!(
                    sg.node_of(fault.site).is_some(),
                    "{mode:?}: injected site must survive back-tracing"
                );
            }
        }
    }

    #[test]
    fn subgraph_features_have_table2_shape() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let fault = some_detected_fault(&e, 5);
        let mut det = fsim.detector();
        let dets = fsim.detections(&mut det, &[fault]);
        let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
        let sg = back_trace(&e.het, &fsim, &e.scan, &log).unwrap();
        assert_eq!(sg.data.features.cols(), FEATURE_DIM);
        assert_eq!(sg.data.features.rows(), sg.node_count());
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
        // Sub-graph is smaller than the whole circuit.
        assert!(sg.node_count() < e.het.node_count());
        assert!(sg.node_count() > 0);
    }

    #[test]
    fn compacted_subgraphs_are_no_smaller_than_bypass() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let mut total = [0usize; 2];
        for skip in [3, 9, 27] {
            let fault = some_detected_fault(&e, skip);
            let mut det = fsim.detector();
            let dets = fsim.detections(&mut det, &[fault]);
            for (k, mode) in ObsMode::ALL.into_iter().enumerate() {
                let log = FailureLog::from_detections(&dets, &e.scan, mode);
                if let Some(sg) = back_trace(&e.het, &fsim, &e.scan, &log) {
                    total[k] += sg.node_count();
                }
            }
        }
        assert!(
            total[1] >= total[0],
            "compaction widens the suspect space: {total:?}"
        );
    }

    #[test]
    fn scoap_graph_extends_features_by_three_columns() {
        let e = env();
        let het = HetGraph::with_scoap(&e.design);
        assert!(het.has_scoap());
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let fault = some_detected_fault(&e, 5);
        let mut det = fsim.detector();
        let dets = fsim.detections(&mut det, &[fault]);
        let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
        let sg = back_trace(&het, &fsim, &e.scan, &log).unwrap();
        assert_eq!(sg.data.features.cols(), FEATURE_DIM + SCOAP_FEATURE_DIM);
        for r in 0..sg.data.features.rows() {
            for c in FEATURE_DIM..FEATURE_DIM + SCOAP_FEATURE_DIM {
                let v = sg.data.features.row(r)[c];
                assert!((0.0..=1.0).contains(&v), "row {r} col {c}: {v}");
            }
        }
        // Oversampling preserves the widened shape.
        let aug = sg.with_dummy_buffer(0);
        assert_eq!(aug.data.features.cols(), FEATURE_DIM + SCOAP_FEATURE_DIM);
        // The plain graph still produces 13 columns for the same log.
        let plain = back_trace(&e.het, &fsim, &e.scan, &log).unwrap();
        assert_eq!(plain.data.features.cols(), FEATURE_DIM);
        assert_eq!(plain.sites, sg.sites);
    }

    #[test]
    fn empty_log_yields_no_subgraph() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        assert!(back_trace(&e.het, &fsim, &e.scan, &FailureLog::default()).is_none());
    }

    #[test]
    fn dummy_buffer_adds_one_node() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        let fault = some_detected_fault(&e, 11);
        let mut det = fsim.detector();
        let dets = fsim.detections(&mut det, &[fault]);
        let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
        let sg = back_trace(&e.het, &fsim, &e.scan, &log).unwrap();
        let aug = sg.with_dummy_buffer(0);
        assert_eq!(aug.data.graph.node_count(), sg.node_count() + 1);
        assert_eq!(aug.data.features.rows(), sg.node_count() + 1);
        // The buffer is attached to node 0.
        assert!(aug.data.graph.neighbors(sg.node_count()).contains(&0));
    }

    #[test]
    fn miv_fault_subgraph_contains_its_miv_node() {
        let e = env();
        let fsim = FaultSim::new(&e.design, &e.ts.patterns);
        // Find a detected MIV fault.
        let mut miv_fault = None;
        'search: for m in 0..e.design.miv_count() {
            for p in Polarity::ALL {
                let f = Fault::new(e.design.miv_site(m), p);
                let mut det = fsim.detector();
                if !fsim.detections(&mut det, &[f]).is_empty() {
                    miv_fault = Some(f);
                    break 'search;
                }
            }
        }
        let Some(fault) = miv_fault else {
            panic!("expected at least one detectable MIV fault");
        };
        let mut det = fsim.detector();
        let dets = fsim.detections(&mut det, &[fault]);
        let log = FailureLog::from_detections(&dets, &e.scan, ObsMode::Bypass);
        let sg = back_trace(&e.het, &fsim, &e.scan, &log).unwrap();
        let node = sg.node_of(fault.site).expect("MIV site retained");
        assert!(sg.miv_nodes.iter().any(|&(n, _)| n == node));
    }
}
