//! Heterogeneous graph construction and back-tracing for M3D diagnosis.
//!
//! Implements Section III of the paper: the two-level heterogeneous graph
//! ([`HetGraph`]: fault-site/MIV nodes at the circuit level, Topnodes and
//! Topedges at the top level), the back-tracing algorithm of Fig. 3
//! ([`back_trace`]), and the extraction of homogeneous sub-graphs with the
//! 13 node features of Table II ([`SubGraph`], [`FEATURE_NAMES`]).
//!
//! # Examples
//!
//! ```
//! use m3d_dft::{ObsMode, ScanChains, ScanConfig};
//! use m3d_hetgraph::{back_trace, HetGraph};
//! use m3d_netlist::generate::Benchmark;
//! use m3d_part::DesignConfig;
//! use m3d_tdf::{generate_patterns, AtpgConfig, FailureLog, FaultSim};
//!
//! let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
//! let ts = generate_patterns(&design, &AtpgConfig::new(1, 128));
//! let scan = ScanChains::new(
//!     design.netlist(),
//!     ScanConfig::for_flop_count(design.netlist().flops().len()),
//! );
//! let het = HetGraph::new(&design);
//! let fsim = FaultSim::new(&design, &ts.patterns);
//!
//! // Inject a fault, capture its log, back-trace to a sub-graph.
//! let fault = m3d_tdf::full_fault_list(&design)
//!     .into_iter()
//!     .zip(&ts.detected)
//!     .find(|&(_, &d)| d)
//!     .map(|(f, _)| f)
//!     .expect("a detected fault");
//! let dets = fsim.detections(&mut fsim.detector(), &[fault]);
//! let log = FailureLog::from_detections(&dets, &scan, ObsMode::Bypass);
//! let sub = back_trace(&het, &fsim, &scan, &log).expect("non-empty");
//! assert!(sub.node_of(fault.site).is_some());
//! ```

#![warn(missing_docs)]

mod graph;
mod subgraph;

pub use graph::{HetGraph, SiteFeatures, TopEdge};
pub use subgraph::{
    back_trace, extract, SubGraph, FEATURE_DIM, FEATURE_NAMES, SCOAP_FEATURE_DIM,
    SCOAP_FEATURE_NAMES,
};
