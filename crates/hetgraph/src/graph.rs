//! The heterogeneous graph of Section III-A.
//!
//! *Circuit level*: every fault site (gate pin) is a node, plus one node
//! per MIV; edges are input-pin→output-pin connections inside gates and
//! net-stem→branch connections (routed through the MIV node for far-tier
//! branches of cut nets).
//!
//! *Top level*: one Topnode per observation point (scan-flop D input),
//! connected by a Topedge to every circuit-level node in its fan-in cone.
//! Topedge features — shortest-path length and MIVs passed through — are
//! computed during the same BFS that collects the cone, so construction is
//! `O(|V| + |E|)` per Topnode, built once and reused for every failure log.

use m3d_netlist::{FlopId, GateKind, SiteId, SitePos};
use m3d_part::{M3dDesign, Tier};

/// One Topedge: a cone member of some Topnode with its path features.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopEdge {
    /// The circuit-level node the Topnode connects to.
    pub site: SiteId,
    /// Shortest-path length from the site to the observation point.
    pub dist: u32,
    /// Number of MIV nodes on that shortest path.
    pub mivs: u16,
}

/// Per-site static features (Table I, circuit-level rows).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SiteFeatures {
    /// Fan-in edge count in the circuit-level graph (`N_fi`).
    pub fan_in: u16,
    /// Fan-out edge count (`N_fo`).
    pub fan_out: u16,
    /// Number of Topedges connected (`N_top`).
    pub top_edges: u32,
    /// Tier encoding: 0 = top, 1 = bottom, 0.5 = MIV (no tier).
    pub tier: f32,
    /// Topological level of the value at this site (`Lvl`).
    pub level: u32,
    /// Whether the site is a gate output pin (`Out`).
    pub is_output: bool,
    /// Whether the site connects to an MIV (`MIV`).
    pub touches_miv: bool,
    /// Mean shortest-path length over connected Topedges.
    pub mean_dist: f32,
    /// Standard deviation of those lengths.
    pub std_dist: f32,
    /// Mean MIV count over connected Topedges.
    pub mean_mivs: f32,
    /// Standard deviation of those MIV counts.
    pub std_mivs: f32,
}

/// The heterogeneous graph of one M3D design under one scan architecture.
///
/// # Examples
///
/// ```
/// use m3d_netlist::generate::Benchmark;
/// use m3d_part::DesignConfig;
/// use m3d_hetgraph::HetGraph;
///
/// let design = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
/// let graph = HetGraph::new(&design);
/// assert_eq!(graph.node_count(), design.sites().len());
/// ```
#[derive(Clone, Debug)]
pub struct HetGraph {
    node_count: usize,
    /// Directed circuit-level edges in CSR (successor) form.
    out_offsets: Vec<u32>,
    out_edges: Vec<u32>,
    /// Directed predecessor CSR.
    in_offsets: Vec<u32>,
    in_edges: Vec<u32>,
    /// Topedge CSR offsets, one per Topnode (flop) plus a tail: the
    /// Topedges of flop `f` are `topedges[top_offsets[f]..top_offsets[f+1]]`.
    top_offsets: Vec<u32>,
    /// Flat Topedge storage (cone + path features), grouped by flop.
    topedges: Vec<TopEdge>,
    /// Per-site static features.
    features: Vec<SiteFeatures>,
    /// Optional per-site normalized SCOAP `[cc0, cc1, co]` (see
    /// [`HetGraph::with_scoap`]).
    scoap: Option<Vec<[f32; 3]>>,
    /// Design-level normalizers for feature scaling.
    max_level: f32,
    max_dist: f32,
    flop_count: usize,
}

impl HetGraph {
    /// Builds the heterogeneous graph for a design.
    pub fn new(design: &M3dDesign) -> Self {
        let nl = design.netlist();
        let sites = design.sites();
        let n = sites.len();

        // --- Circuit-level directed edges ---
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut push = |a: SiteId, b: SiteId| {
            edges.push((a.0, b.0));
        };
        for (gi, gate) in nl.gates().iter().enumerate() {
            let g = m3d_netlist::GateId::new(gi);
            // input pins -> output pin (inside the gate)
            if let Some(out_site) = sites.output_site(nl, g) {
                for pin in 0..gate.inputs().len() {
                    push(sites.input_site(g, pin as u8), out_site);
                }
            }
        }
        for (ni, net) in nl.nets().iter().enumerate() {
            let net_id = m3d_netlist::NetId::new(ni);
            let stem = sites
                .output_site(nl, net.driver())
                .expect("net drivers have output sites");
            let miv = design.miv_on_net(net_id);
            let driver_tier = design.tier_of_gate(net.driver());
            if let Some(m) = miv {
                push(stem, design.miv_site(m as usize));
            }
            for &(sink, pin) in net.sinks() {
                let branch = sites.input_site(sink, pin);
                match miv {
                    Some(m) if design.tier_of_gate(sink) != driver_tier => {
                        push(design.miv_site(m as usize), branch);
                    }
                    _ => push(stem, branch),
                }
            }
        }
        let (out_offsets, out_edges) = to_csr(n, &edges, false);
        let (in_offsets, in_edges) = to_csr(n, &edges, true);

        // --- Site levels ---
        let level_of = |site: SiteId| -> u32 {
            match sites.pos(site) {
                SitePos::Output(g) => nl.level(g),
                SitePos::Input(g, pin) => {
                    let net = nl.gate(g).inputs()[pin as usize];
                    nl.level(nl.net(net).driver())
                }
                SitePos::Miv(m) => nl.level(nl.net(design.mivs()[m as usize].net).driver()),
            }
        };

        // --- Topnodes: backward BFS per flop over predecessor edges ---
        // Cones are appended to one flat CSR-style store (offsets + flat
        // storage) instead of one `Vec` per flop.
        let mut top_offsets: Vec<u32> = Vec::with_capacity(nl.flops().len() + 1);
        top_offsets.push(0);
        let mut topedges: Vec<TopEdge> = Vec::new();
        let mut dist = vec![u32::MAX; n];
        let mut mivs = vec![0u16; n];
        let mut touched: Vec<u32> = Vec::new();
        for &fg in nl.flops() {
            let root = sites.input_site(fg, 0);
            let mut queue = std::collections::VecDeque::new();
            dist[root.index()] = 0;
            mivs[root.index()] = 0;
            touched.push(root.0);
            queue.push_back(root.0);
            while let Some(v) = queue.pop_front() {
                let vi = v as usize;
                topedges.push(TopEdge {
                    site: SiteId(v),
                    dist: dist[vi],
                    mivs: mivs[vi],
                });
                // Stop traversal at sequential boundaries: a flop's Q pin
                // is in the cone, but nothing behind the flop is.
                if let SitePos::Output(g) = sites.pos(SiteId(v)) {
                    if !nl.gate(g).kind().is_combinational() {
                        continue;
                    }
                }
                for &u in csr_row(&in_offsets, &in_edges, vi) {
                    let ui = u as usize;
                    if dist[ui] != u32::MAX {
                        continue;
                    }
                    dist[ui] = dist[vi] + 1;
                    let is_miv = matches!(sites.pos(SiteId(u)), SitePos::Miv(_));
                    mivs[ui] = mivs[vi] + u16::from(is_miv);
                    touched.push(u);
                    queue.push_back(u);
                }
            }
            for &t in &touched {
                dist[t as usize] = u32::MAX;
                mivs[t as usize] = 0;
            }
            touched.clear();
            top_offsets.push(topedges.len() as u32);
        }

        // --- Per-site features ---
        let mut features: Vec<SiteFeatures> = (0..n)
            .map(|i| {
                let site = SiteId::new(i);
                let pos = sites.pos(site);
                SiteFeatures {
                    fan_in: (in_offsets[i + 1] - in_offsets[i]) as u16,
                    fan_out: (out_offsets[i + 1] - out_offsets[i]) as u16,
                    top_edges: 0,
                    tier: match design.tier_of_site(site) {
                        Some(Tier::Top) => 0.0,
                        Some(Tier::Bottom) => 1.0,
                        None => 0.5,
                    },
                    level: level_of(site),
                    is_output: matches!(pos, SitePos::Output(_)),
                    touches_miv: design.site_touches_miv(site),
                    ..SiteFeatures::default()
                }
            })
            .collect();
        // Topedge aggregates per site.
        let mut sum_d = vec![0.0f64; n];
        let mut sum_d2 = vec![0.0f64; n];
        let mut sum_m = vec![0.0f64; n];
        let mut sum_m2 = vec![0.0f64; n];
        let mut max_dist = 1.0f32;
        for te in &topedges {
            let i = te.site.index();
            features[i].top_edges += 1;
            sum_d[i] += f64::from(te.dist);
            sum_d2[i] += f64::from(te.dist) * f64::from(te.dist);
            sum_m[i] += f64::from(te.mivs);
            sum_m2[i] += f64::from(te.mivs) * f64::from(te.mivs);
            max_dist = max_dist.max(te.dist as f32);
        }
        for (i, f) in features.iter_mut().enumerate() {
            let c = f64::from(f.top_edges);
            if c > 0.0 {
                let md = sum_d[i] / c;
                let mm = sum_m[i] / c;
                f.mean_dist = md as f32;
                f.std_dist = ((sum_d2[i] / c - md * md).max(0.0)).sqrt() as f32;
                f.mean_mivs = mm as f32;
                f.std_mivs = ((sum_m2[i] / c - mm * mm).max(0.0)).sqrt() as f32;
            }
        }

        let max_level = nl.stats().depth.max(1) as f32;
        HetGraph {
            node_count: n,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            top_offsets,
            topedges,
            features,
            scoap: None,
            max_level,
            max_dist,
            flop_count: nl.flops().len(),
        }
    }

    /// Builds the graph and additionally attaches normalized SCOAP
    /// testability measures `[cc0, cc1, co]` per site (the optional
    /// feature extension — sub-graphs extracted from this graph carry
    /// three extra feature columns; see `SCOAP_FEATURE_NAMES`).
    pub fn with_scoap(design: &M3dDesign) -> Self {
        let mut g = Self::new(design);
        let scoap = m3d_dataflow::Scoap::compute(design.netlist());
        g.scoap = Some(
            design
                .sites()
                .iter()
                .map(|(site, _)| {
                    let m = scoap.site_measures(design, site);
                    [
                        m3d_dataflow::Scoap::normalize(m.cc0),
                        m3d_dataflow::Scoap::normalize(m.cc1),
                        m3d_dataflow::Scoap::normalize(m.co),
                    ]
                })
                .collect(),
        );
        g
    }

    /// Normalized SCOAP `[cc0, cc1, co]` of a site, when the graph was
    /// built via [`HetGraph::with_scoap`].
    #[inline]
    pub fn scoap(&self, site: SiteId) -> Option<[f32; 3]> {
        self.scoap.as_ref().map(|s| s[site.index()])
    }

    /// Whether SCOAP measures are attached.
    #[inline]
    pub fn has_scoap(&self) -> bool {
        self.scoap.is_some()
    }

    /// Number of circuit-level nodes (pin sites + MIV sites).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Successor sites of `site` in the circuit-level graph.
    #[inline]
    pub fn successors(&self, site: SiteId) -> &[u32] {
        csr_row(&self.out_offsets, &self.out_edges, site.index())
    }

    /// Plans cache-resident row partitions of the circuit-level successor
    /// CSR for `cols` `f32` feature columns under `budget_bytes`, using
    /// the same deterministic partitioner as
    /// [`m3d_gnn::GcnGraph::partition_plan`]. Message-passing over site
    /// features at paper scale (hundreds of thousands of sites) can walk
    /// the plan's partitions so each partition's touched feature rows
    /// stay L2-resident.
    pub fn partition_plan(&self, cols: usize, budget_bytes: usize) -> m3d_gnn::GraphPartition {
        m3d_gnn::GraphPartition::plan(
            &self.out_offsets,
            &self.out_edges,
            self.node_count,
            cols,
            budget_bytes,
        )
    }

    /// Predecessor sites of `site`.
    #[inline]
    pub fn predecessors(&self, site: SiteId) -> &[u32] {
        csr_row(&self.in_offsets, &self.in_edges, site.index())
    }

    /// The Topedges of a Topnode (one per fan-in cone member).
    #[inline]
    pub fn topedges(&self, flop: FlopId) -> &[TopEdge] {
        let f = flop.index();
        &self.topedges[self.top_offsets[f] as usize..self.top_offsets[f + 1] as usize]
    }

    /// Static features of a site.
    #[inline]
    pub fn site_features(&self, site: SiteId) -> &SiteFeatures {
        &self.features[site.index()]
    }

    /// Design-level normalizers: `(max level, max Topedge distance, flops)`.
    pub fn normalizers(&self) -> (f32, f32, usize) {
        (self.max_level, self.max_dist, self.flop_count)
    }

    /// Total circuit-level edge count.
    pub fn edge_count(&self) -> usize {
        self.out_edges.len()
    }
}

fn to_csr(n: usize, edges: &[(u32, u32)], reverse: bool) -> (Vec<u32>, Vec<u32>) {
    let mut counts = vec![0u32; n + 1];
    for &(a, b) in edges {
        let src = if reverse { b } else { a };
        counts[src as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let mut out = vec![0u32; edges.len()];
    let mut cursor = counts.clone();
    for &(a, b) in edges {
        let (src, dst) = if reverse { (b, a) } else { (a, b) };
        out[cursor[src as usize] as usize] = dst;
        cursor[src as usize] += 1;
    }
    (counts, out)
}

#[inline]
fn csr_row<'a>(offsets: &[u32], edges: &'a [u32], i: usize) -> &'a [u32] {
    &edges[offsets[i] as usize..offsets[i + 1] as usize]
}

// GateKind used via is_combinational in cone construction.
const _: fn(GateKind) -> bool = GateKind::is_combinational;

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_netlist::generate::Benchmark;
    use m3d_part::DesignConfig;

    fn graph() -> (M3dDesign, HetGraph) {
        let d = DesignConfig::Syn1.build_sized(Benchmark::Aes, Some(300));
        let g = HetGraph::new(&d);
        (d, g)
    }

    #[test]
    fn every_site_is_a_node() {
        let (d, g) = graph();
        assert_eq!(g.node_count(), d.sites().len());
        assert!(g.edge_count() > g.node_count());
    }

    #[test]
    fn csr_directions_are_inverse() {
        let (_, g) = graph();
        for v in 0..g.node_count() {
            for &s in g.successors(SiteId::new(v)) {
                assert!(
                    g.predecessors(SiteId::new(s as usize))
                        .contains(&(v as u32)),
                    "edge {v}->{s} missing reverse"
                );
            }
        }
    }

    #[test]
    fn partition_plan_covers_successor_csr_within_budget() {
        let (_, g) = graph();
        let cols = 16;
        let budget = 2048; // 32 rows of 16 f32 cols — forces many partitions
        let plan = g.partition_plan(cols, budget);
        assert!(plan.len() > 1, "small budget must split the site graph");
        assert_eq!(plan.row_count(), g.node_count());
        let budget_rows = budget / (cols * 4);
        let mut next = 0;
        for p in 0..plan.len() {
            let r = plan.part_rows(p);
            assert_eq!(r.start, next);
            next = r.end;
            assert!(plan.gather_len(p) <= budget_rows || r.len() == 1);
        }
        assert_eq!(next, g.node_count());
        // Deterministic: independent of pool width.
        let again = m3d_par::with_threads(4, || g.partition_plan(cols, budget));
        assert_eq!(plan, again);
    }

    #[test]
    fn miv_nodes_sit_between_stem_and_far_branches() {
        let (d, g) = graph();
        assert!(d.miv_count() > 0);
        for m in 0..d.miv_count() {
            let site = d.miv_site(m);
            assert!(
                !g.predecessors(site).is_empty(),
                "MIV has a stem predecessor"
            );
            assert!(!g.successors(site).is_empty(), "MIV feeds far branches");
        }
    }

    #[test]
    fn topedges_start_at_zero_distance_and_count_mivs() {
        let (d, g) = graph();
        let nl = d.netlist();
        for (fi, _) in nl.flops().iter().enumerate() {
            let cone = g.topedges(FlopId::new(fi));
            assert!(!cone.is_empty());
            assert_eq!(cone[0].dist, 0, "root observes itself at distance 0");
            for te in cone {
                assert!(u32::from(te.mivs) <= te.dist);
            }
        }
    }

    #[test]
    fn cone_stops_behind_flops() {
        let (d, g) = graph();
        let nl = d.netlist();
        // No cone may contain an input pin of another flop beyond depth 0
        // unless it *is* the root (cones stop at Q pins).
        for (fi, _) in nl.flops().iter().enumerate() {
            for te in g.topedges(FlopId::new(fi)) {
                if te.dist == 0 {
                    continue;
                }
                if let SitePos::Input(gate, _) = d.sites().pos(te.site) {
                    assert!(
                        nl.gate(gate).kind() != GateKind::Dff,
                        "cone crossed a sequential boundary"
                    );
                }
            }
        }
    }

    #[test]
    fn features_are_populated() {
        let (d, g) = graph();
        let mut any_top = false;
        let mut any_miv = false;
        for (site, _) in d.sites().iter() {
            let f = g.site_features(site);
            if f.top_edges > 0 {
                any_top = true;
                assert!(f.mean_dist >= 0.0);
            }
            if f.touches_miv {
                any_miv = true;
            }
            assert!(f.tier == 0.0 || f.tier == 1.0 || f.tier == 0.5);
        }
        assert!(any_top && any_miv);
    }
}
